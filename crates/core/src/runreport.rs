//! The versioned, machine-readable run report: one JSON document
//! unifying everything a pipeline run can tell you — per-race verdicts
//! with their evidence and work counters, the farm's aggregate and
//! per-worker statistics, the solver-cache snapshot, and the recorded
//! event trace's summary.
//!
//! ## Format
//!
//! A single JSON object (hand-rolled through [`portend_obs::json`], in
//! the same no-external-dependencies spirit as `portend_symex::warm`'s
//! binary store):
//!
//! ```text
//! {
//!   "format":  "portend-run-report",   readers reject anything else
//!   "version": 3,                      readers reject unknown versions
//!   "label":   "...",                  free-form run label
//!   "record_time_ns": …,
//!   "races":   [ { race + verdict/error + counters } … ],
//!   "farm":    { FarmStats + per_worker } | null,
//!   "cache":   { CacheSnapshot } | null,
//!   "static":  { StaticStats } | null,
//!   "events":  { trace summary } | null
//! }
//! ```
//!
//! Every counter is written as a JSON integer (the writer never emits
//! floats), durations as integer nanoseconds — so a report round-trips
//! structurally exactly: `RunReport::from_json(report.to_json())` is
//! equality, which is what makes reports diffable across builds and
//! usable as golden files.
//!
//! ## Versioning rules
//!
//! [`REPORT_FORMAT_VERSION`] follows the same discipline as
//! `portend_symex::WARM_FORMAT_VERSION`: bump it whenever (a) the
//! document shape changes (fields added, removed, or re-typed), or
//! (b) the *semantics* behind an unchanged field change — a counter
//! that starts measuring something else would silently poison any
//! cross-build diff. Version mismatch on read is a clean rejection
//! ([`ReportError::UnsupportedVersion`]), never a best-effort parse.

use std::fmt;
use std::path::Path;
use std::time::Duration;

use portend_farm::{DispatchSnapshot, FarmStats, WorkerStats};
use portend_obs::json::{self, Json};
use portend_obs::{EventKind, Trace};
use portend_sa::StaticStats;
use portend_symex::{CacheSnapshot, SingleFlightStats};

use crate::pipeline::{AnalyzedRace, PipelineResult};
use crate::taxonomy::{ClassifyStats, OutputDiffEvidence, Verdict, VerdictDetail};

/// The `"format"` discriminator every report carries.
pub const REPORT_FORMAT_NAME: &str = "portend-run-report";

/// Current report schema version. See the module docs for the rules on
/// when this must be bumped.
///
/// * v2 — added the `"static"` section ([`portend_sa::StaticStats`]:
///   static candidate pairs, statically pruned pairs, dynamically
///   corroborated clusters).
/// * v3 — added the nullable `"single_flight"` (claims, deduped
///   slices, waits) and `"dispatch"` (batches, batched jobs, current
///   adaptive threshold) objects inside `"farm"`.
/// * v4 — the `"cache"` object gained `"warm_rejected_fingerprint"`
///   (warm stores rejected at load because their header fingerprint
///   named a different program).
pub const REPORT_FORMAT_VERSION: u32 = 4;

/// Why a report document could not be read.
#[derive(Debug)]
pub enum ReportError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The document is not JSON.
    Json(json::JsonError),
    /// The document's `"format"` field is not [`REPORT_FORMAT_NAME`].
    BadFormat,
    /// The document's `"version"` is not [`REPORT_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// A structural invariant failed; the payload names the first
    /// violated check.
    Malformed(&'static str),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "run report i/o error: {e}"),
            ReportError::Json(e) => write!(f, "run report is not JSON: {e}"),
            ReportError::BadFormat => write!(f, "not a {REPORT_FORMAT_NAME} document"),
            ReportError::UnsupportedVersion(v) => write!(
                f,
                "run report version {v} (this build reads {REPORT_FORMAT_VERSION})"
            ),
            ReportError::Malformed(what) => write!(f, "run report malformed: {what}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<std::io::Error> for ReportError {
    fn from(e: std::io::Error) -> Self {
        ReportError::Io(e)
    }
}

impl From<json::JsonError> for ReportError {
    fn from(e: json::JsonError) -> Self {
        ReportError::Json(e)
    }
}

/// One race's reported outcome: identity, classification time, and the
/// verdict (or the classification failure's message).
#[derive(Debug, Clone, PartialEq)]
pub struct RaceOutcome {
    /// Name of the raced-on allocation.
    pub alloc_name: String,
    /// Offset of the raced-on cell within the allocation.
    pub offset: usize,
    /// Dynamic occurrences observed for this cluster.
    pub instances: u64,
    /// The race's human-readable one-liner (the detector's rendering).
    pub display: String,
    /// Wall-clock classification time.
    pub time: Duration,
    /// The verdict, or the infrastructure failure that prevented one.
    pub verdict: Result<VerdictReport, String>,
}

impl RaceOutcome {
    /// Flattens one classified race for interchange — the exact mapping
    /// [`RunReport::from_result`] applies per race, exposed so streaming
    /// front ends produce outcomes identical to the batch report's.
    pub fn from_analyzed(a: &AnalyzedRace) -> Self {
        RaceOutcome {
            alloc_name: a.cluster.representative.alloc_name.clone(),
            offset: a.cluster.representative.offset,
            instances: a.cluster.instances,
            display: a.cluster.representative.to_string(),
            time: a.time,
            verdict: match &a.verdict {
                Ok(v) => Ok(VerdictReport::from_verdict(v)),
                Err(e) => Err(e.0.clone()),
            },
        }
    }

    /// The outcome's canonical JSON value — the exact object
    /// [`RunReport::to_json`] embeds in `"races"`, exposed so wire
    /// protocols (the serve daemon's per-cluster verdict frames) render
    /// through the same code path and stay byte-identical to library
    /// reports.
    pub fn to_json_value(&self) -> Json {
        race_json(self)
    }

    /// Inverse of [`RaceOutcome::to_json_value`].
    pub fn from_json_value(v: &Json) -> Result<RaceOutcome, ReportError> {
        race_from(v)
    }
}

/// One verdict, flattened for interchange: the class label, the `k`
/// certificate, the per-classification work counters, and the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictReport {
    /// The paper's class label (`specViol`, `outDiff`, `k-witness`,
    /// `singleOrd`).
    pub class: String,
    /// For `k-witness`: the witnessing path × schedule combinations.
    pub k: u64,
    /// Whether the post-race concrete states differed, when computed.
    pub states_differ: Option<bool>,
    /// The classification's work counters (Table 4 / Fig. 9 inputs,
    /// including the fork copy-on-write byte counters).
    pub stats: ClassifyStats,
    /// The verdict's evidence.
    pub detail: DetailReport,
}

impl VerdictReport {
    /// Flattens a [`Verdict`] for interchange. Spec-violation kinds are
    /// reported by their Table 2 column plus the rendered message —
    /// enough to triage and to diff across builds without serializing
    /// VM-internal error types.
    pub fn from_verdict(v: &Verdict) -> Self {
        let detail = match &v.detail {
            VerdictDetail::SpecViolation { kind, replay } => DetailReport::SpecViolation {
                column: kind.table2_column().to_string(),
                message: kind.to_string(),
                inputs: replay.inputs.clone(),
                schedule: replay.schedule.iter().map(|t| u64::from(t.0)).collect(),
                description: replay.description.clone(),
            },
            VerdictDetail::OutputDiff(ev) => DetailReport::OutputDiff(ev.clone()),
            VerdictDetail::KWitness => DetailReport::KWitness,
            VerdictDetail::AdHocSync => DetailReport::AdHocSync,
        };
        VerdictReport {
            class: v.class.label().to_string(),
            k: v.k,
            states_differ: v.states_differ,
            stats: v.stats,
            detail,
        }
    }
}

/// A verdict's evidence, flattened for interchange.
#[derive(Debug, Clone, PartialEq)]
pub enum DetailReport {
    /// A specification violation with its replay recipe.
    SpecViolation {
        /// Table 2 column (`crash`, `deadlock`, `hang`, `semantic`).
        column: String,
        /// The violation, rendered.
        message: String,
        /// Concrete inputs reproducing it.
        inputs: Vec<i64>,
        /// Scheduler decisions (thread ids) reproducing it.
        schedule: Vec<u64>,
        /// What happens on replay.
        description: String,
    },
    /// An output difference with the divergence evidence.
    OutputDiff(OutputDiffEvidence),
    /// Harmless in all explored combinations.
    KWitness,
    /// Alternate ordering impossible (ad-hoc synchronization).
    AdHocSync,
}

/// Summary of the run's recorded event trace: totals per kind plus the
/// solver-level aggregates read off the `solver_check` span arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventSummary {
    /// Events recorded across all lanes.
    pub total: u64,
    /// Per-kind counts (label → count), in [`EventKind::ALL`] order,
    /// kinds that never occurred omitted.
    pub counts: Vec<(String, u64)>,
    /// Satisfiability checks spanned.
    pub solver_checks: u64,
    /// Constraint slices examined across all checks (the sum of the
    /// checks' first span argument).
    pub slices_examined: u64,
    /// Search-tree nodes visited across all checks (second argument).
    pub nodes_visited: u64,
}

impl EventSummary {
    /// Summarizes a merged trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut solver_checks = 0u64;
        let mut slices_examined = 0u64;
        let mut nodes_visited = 0u64;
        for lane in &trace.lanes {
            for e in &lane.events {
                if e.kind == EventKind::SolverCheck {
                    solver_checks += 1;
                    slices_examined += e.a;
                    nodes_visited += e.b;
                }
            }
        }
        EventSummary {
            total: trace.total_events(),
            counts: trace
                .counts_by_kind()
                .into_iter()
                .map(|(k, n)| (k.to_string(), n))
                .collect(),
            solver_checks,
            slices_examined,
            nodes_visited,
        }
    }
}

/// The versioned run report. See the module docs for the schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Free-form run label (workload name, build id, …).
    pub label: String,
    /// Wall-clock time of the recording phase.
    pub record_time: Duration,
    /// One entry per detected race cluster, in detection order.
    pub races: Vec<RaceOutcome>,
    /// Farm statistics, when the run used the parallel pipeline.
    pub farm: Option<FarmStats>,
    /// Solver-cache counters, when a cache was enabled.
    pub cache: Option<CacheSnapshot>,
    /// Static pre-analysis counters, when
    /// `PortendConfig::static_pass` ran the lockset/MHP pass.
    pub static_pass: Option<StaticStats>,
    /// Event-trace summary, when the run recorded one.
    pub events: Option<EventSummary>,
}

impl RunReport {
    /// Assembles a report from a pipeline result (serial or parallel).
    pub fn from_result(label: impl Into<String>, result: &PipelineResult) -> Self {
        let races = result
            .analyzed
            .iter()
            .map(RaceOutcome::from_analyzed)
            .collect();
        RunReport {
            label: label.into(),
            record_time: result.record_time,
            races,
            farm: None,
            cache: result.cache,
            static_pass: result.static_stats,
            events: None,
        }
    }

    /// The same report, carrying the parallel run's farm statistics.
    pub fn with_farm(mut self, stats: FarmStats) -> Self {
        self.farm = Some(stats);
        self
    }

    /// The same report, carrying the recorded trace's summary.
    pub fn with_trace(mut self, trace: &Trace) -> Self {
        self.events = Some(EventSummary::from_trace(trace));
        self
    }

    /// Harmful verdicts (`specViol`) in the report.
    pub fn harmful(&self) -> u64 {
        self.races
            .iter()
            .filter(|r| matches!(&r.verdict, Ok(v) if v.class == "specViol"))
            .count() as u64
    }

    /// Renders the report as its canonical compact JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The report as a [`Json`] value — the exact document
    /// [`RunReport::to_json`] renders, exposed so wire protocols (the
    /// serve daemon's terminating `done` frame) can embed a report
    /// inside a larger frame while staying byte-identical to the
    /// library's own rendering.
    pub fn to_json_value(&self) -> Json {
        let mut members = vec![
            ("format".into(), REPORT_FORMAT_NAME.into()),
            ("version".into(), Json::from(REPORT_FORMAT_VERSION)),
            ("label".into(), self.label.as_str().into()),
            ("record_time_ns".into(), dur_json(self.record_time)),
            (
                "races".into(),
                Json::Arr(self.races.iter().map(race_json).collect()),
            ),
        ];
        members.push((
            "farm".into(),
            self.farm.as_ref().map_or(Json::Null, farm_json),
        ));
        members.push((
            "cache".into(),
            self.cache.as_ref().map_or(Json::Null, cache_json),
        ));
        members.push((
            "static".into(),
            self.static_pass.as_ref().map_or(Json::Null, static_json),
        ));
        members.push((
            "events".into(),
            self.events.as_ref().map_or(Json::Null, events_json),
        ));
        Json::Obj(members)
    }

    /// Parses a report document, rejecting wrong formats and versions
    /// (see the module docs' versioning rules).
    pub fn from_json(input: &str) -> Result<RunReport, ReportError> {
        Self::from_json_value(&json::parse(input)?)
    }

    /// Inverse of [`RunReport::to_json_value`]: parses a report embedded
    /// as a [`Json`] value (e.g. inside a protocol frame), with the same
    /// format/version rejection rules as [`RunReport::from_json`].
    pub fn from_json_value(doc: &Json) -> Result<RunReport, ReportError> {
        if doc.get("format").and_then(Json::as_str) != Some(REPORT_FORMAT_NAME) {
            return Err(ReportError::BadFormat);
        }
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or(ReportError::Malformed("missing version"))?;
        if version != u64::from(REPORT_FORMAT_VERSION) {
            return Err(ReportError::UnsupportedVersion(version as u32));
        }
        Ok(RunReport {
            label: req_str(doc, "label")?.to_string(),
            record_time: dur_from(doc, "record_time_ns")?,
            races: doc
                .get("races")
                .and_then(Json::as_arr)
                .ok_or(ReportError::Malformed("missing races"))?
                .iter()
                .map(race_from)
                .collect::<Result<_, _>>()?,
            farm: match doc.get("farm") {
                None | Some(Json::Null) => None,
                Some(v) => Some(farm_from(v)?),
            },
            cache: match doc.get("cache") {
                None | Some(Json::Null) => None,
                Some(v) => Some(cache_from(v)?),
            },
            static_pass: match doc.get("static") {
                None | Some(Json::Null) => None,
                Some(v) => Some(static_from(v)?),
            },
            events: match doc.get("events") {
                None | Some(Json::Null) => None,
                Some(v) => Some(events_from(v)?),
            },
        })
    }

    /// Writes [`RunReport::to_json`] to `path` atomically (by rename,
    /// like the warm store — readers never observe a torn report).
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and parses a report from `path`.
    pub fn read_from(path: impl AsRef<Path>) -> Result<RunReport, ReportError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

// ---- serialization helpers (writer side) ----------------------------

fn dur_json(d: Duration) -> Json {
    Json::Int(d.as_nanos() as i128)
}

fn opt_i64(v: Option<i64>) -> Json {
    v.map_or(Json::Null, Json::from)
}

fn race_json(r: &RaceOutcome) -> Json {
    Json::Obj(vec![
        ("alloc".into(), r.alloc_name.as_str().into()),
        ("offset".into(), Json::from(r.offset)),
        ("instances".into(), Json::from(r.instances)),
        ("display".into(), r.display.as_str().into()),
        ("time_ns".into(), dur_json(r.time)),
        (
            "verdict".into(),
            match &r.verdict {
                Ok(v) => verdict_json(v),
                Err(_) => Json::Null,
            },
        ),
        (
            "error".into(),
            match &r.verdict {
                Ok(_) => Json::Null,
                Err(e) => e.as_str().into(),
            },
        ),
    ])
}

fn verdict_json(v: &VerdictReport) -> Json {
    Json::Obj(vec![
        ("class".into(), v.class.as_str().into()),
        ("k".into(), Json::from(v.k)),
        (
            "states_differ".into(),
            v.states_differ.map_or(Json::Null, Json::from),
        ),
        ("stats".into(), classify_stats_json(&v.stats)),
        ("detail".into(), detail_json(&v.detail)),
    ])
}

fn classify_stats_json(s: &ClassifyStats) -> Json {
    Json::Obj(vec![
        ("primaries".into(), Json::from(s.primaries)),
        ("alternates".into(), Json::from(s.alternates)),
        ("preemptions".into(), Json::from(s.preemptions)),
        (
            "dependent_branches".into(),
            Json::from(s.dependent_branches),
        ),
        ("instructions".into(), Json::from(s.instructions)),
        (
            "max_path_instructions".into(),
            Json::from(s.max_path_instructions),
        ),
        (
            "bytes_copied_on_fork".into(),
            Json::from(s.bytes_copied_on_fork),
        ),
        (
            "bytes_shared_on_fork".into(),
            Json::from(s.bytes_shared_on_fork),
        ),
        (
            "slices_reused_at_fork".into(),
            Json::from(s.slices_reused_at_fork),
        ),
    ])
}

fn detail_json(d: &DetailReport) -> Json {
    match d {
        DetailReport::SpecViolation {
            column,
            message,
            inputs,
            schedule,
            description,
        } => Json::Obj(vec![
            ("type".into(), "spec_violation".into()),
            ("column".into(), column.as_str().into()),
            ("message".into(), message.as_str().into()),
            (
                "inputs".into(),
                Json::Arr(inputs.iter().map(|&i| Json::from(i)).collect()),
            ),
            (
                "schedule".into(),
                Json::Arr(schedule.iter().map(|&t| Json::from(t)).collect()),
            ),
            ("description".into(), description.as_str().into()),
        ]),
        DetailReport::OutputDiff(ev) => Json::Obj(vec![
            ("type".into(), "output_diff".into()),
            ("position".into(), Json::from(ev.position)),
            ("primary".into(), ev.primary.as_str().into()),
            ("alternate".into(), ev.alternate.as_str().into()),
            ("primary_fd".into(), opt_i64(ev.primary_fd)),
            ("alternate_fd".into(), opt_i64(ev.alternate_fd)),
            ("primary_len".into(), Json::from(ev.primary_len)),
            ("alternate_len".into(), Json::from(ev.alternate_len)),
            ("primary_loc".into(), ev.primary_loc.as_str().into()),
            (
                "inputs".into(),
                Json::Arr(ev.inputs.iter().map(|&i| Json::from(i)).collect()),
            ),
        ]),
        DetailReport::KWitness => Json::Obj(vec![("type".into(), "k_witness".into())]),
        DetailReport::AdHocSync => Json::Obj(vec![("type".into(), "adhoc_sync".into())]),
    }
}

fn farm_json(s: &FarmStats) -> Json {
    Json::Obj(vec![
        ("jobs".into(), Json::from(s.jobs)),
        ("wall_ns".into(), dur_json(s.wall)),
        ("busy_total_ns".into(), dur_json(s.busy_total)),
        ("steals".into(), Json::from(s.steals)),
        ("budget_overruns".into(), Json::from(s.budget_overruns)),
        (
            "cache".into(),
            s.cache.as_ref().map_or(Json::Null, cache_json),
        ),
        ("fork_bytes_copied".into(), Json::from(s.fork_bytes_copied)),
        ("fork_bytes_shared".into(), Json::from(s.fork_bytes_shared)),
        (
            "fork_slices_reused".into(),
            Json::from(s.fork_slices_reused),
        ),
        ("slices_offloaded".into(), Json::from(s.slices_offloaded)),
        (
            "slice_parallel_wall_saved_ns".into(),
            dur_json(s.slice_parallel_wall_saved),
        ),
        (
            "single_flight".into(),
            s.single_flight.as_ref().map_or(Json::Null, |sf| {
                Json::Obj(vec![
                    ("claims".into(), Json::from(sf.claims)),
                    ("slices_deduped".into(), Json::from(sf.slices_deduped)),
                    (
                        "single_flight_waits".into(),
                        Json::from(sf.single_flight_waits),
                    ),
                ])
            }),
        ),
        (
            "dispatch".into(),
            s.dispatch.as_ref().map_or(Json::Null, |d| {
                Json::Obj(vec![
                    (
                        "batches_dispatched".into(),
                        Json::from(d.batches_dispatched),
                    ),
                    ("batched_jobs".into(), Json::from(d.batched_jobs)),
                    (
                        "threshold_now".into(),
                        d.threshold_now.map_or(Json::Null, Json::from),
                    ),
                ])
            }),
        ),
        (
            "static".into(),
            s.static_pass.as_ref().map_or(Json::Null, static_json),
        ),
        (
            "per_worker".into(),
            Json::Arr(
                s.per_worker
                    .iter()
                    .map(|w| {
                        Json::Obj(vec![
                            ("jobs".into(), Json::from(w.jobs)),
                            ("steals".into(), Json::from(w.steals)),
                            ("busy_ns".into(), dur_json(w.busy)),
                            ("slice_jobs".into(), Json::from(w.slice_jobs)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn cache_json(c: &CacheSnapshot) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::from(c.hits)),
        ("misses".into(), Json::from(c.misses)),
        ("slice_hits".into(), Json::from(c.slice_hits)),
        ("slice_misses".into(), Json::from(c.slice_misses)),
        ("key_bytes".into(), Json::from(c.key_bytes)),
        ("entries".into(), Json::from(c.entries)),
        ("evictions".into(), Json::from(c.evictions)),
        ("second_chances".into(), Json::from(c.second_chances)),
        ("warmed".into(), Json::from(c.warmed)),
        ("warm_hits".into(), Json::from(c.warm_hits)),
        ("warm_validations".into(), Json::from(c.warm_validations)),
        ("warm_mismatches".into(), Json::from(c.warm_mismatches)),
        (
            "warm_rejected_fingerprint".into(),
            Json::from(c.warm_rejected_fingerprint),
        ),
    ])
}

fn static_json(s: &StaticStats) -> Json {
    Json::Obj(vec![
        ("candidates".into(), Json::from(s.candidates)),
        ("pruned".into(), Json::from(s.pruned)),
        ("corroborated".into(), Json::from(s.corroborated)),
    ])
}

fn events_json(e: &EventSummary) -> Json {
    Json::Obj(vec![
        ("total".into(), Json::from(e.total)),
        (
            "counts".into(),
            Json::Obj(
                e.counts
                    .iter()
                    .map(|(k, n)| (k.clone(), Json::from(*n)))
                    .collect(),
            ),
        ),
        ("solver_checks".into(), Json::from(e.solver_checks)),
        ("slices_examined".into(), Json::from(e.slices_examined)),
        ("nodes_visited".into(), Json::from(e.nodes_visited)),
    ])
}

// ---- deserialization helpers (reader side) --------------------------

fn req_str<'a>(v: &'a Json, key: &'static str) -> Result<&'a str, ReportError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or(ReportError::Malformed(key))
}

fn req_u64(v: &Json, key: &'static str) -> Result<u64, ReportError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or(ReportError::Malformed(key))
}

fn req_usize(v: &Json, key: &'static str) -> Result<usize, ReportError> {
    usize::try_from(req_u64(v, key)?).map_err(|_| ReportError::Malformed(key))
}

fn dur_from(v: &Json, key: &'static str) -> Result<Duration, ReportError> {
    Ok(Duration::from_nanos(req_u64(v, key)?))
}

fn i64_arr(v: &Json, key: &'static str) -> Result<Vec<i64>, ReportError> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or(ReportError::Malformed(key))?
        .iter()
        .map(|x| x.as_i64().ok_or(ReportError::Malformed(key)))
        .collect()
}

fn race_from(v: &Json) -> Result<RaceOutcome, ReportError> {
    let verdict = match (v.get("verdict"), v.get("error")) {
        (Some(Json::Null) | None, Some(Json::Str(e))) => Err(e.clone()),
        (Some(obj), _) if !matches!(obj, Json::Null) => Ok(verdict_from(obj)?),
        _ => return Err(ReportError::Malformed("race has neither verdict nor error")),
    };
    Ok(RaceOutcome {
        alloc_name: req_str(v, "alloc")?.to_string(),
        offset: req_usize(v, "offset")?,
        instances: req_u64(v, "instances")?,
        display: req_str(v, "display")?.to_string(),
        time: dur_from(v, "time_ns")?,
        verdict,
    })
}

fn verdict_from(v: &Json) -> Result<VerdictReport, ReportError> {
    let stats = v
        .get("stats")
        .ok_or(ReportError::Malformed("verdict stats"))?;
    Ok(VerdictReport {
        class: req_str(v, "class")?.to_string(),
        k: req_u64(v, "k")?,
        states_differ: match v.get("states_differ") {
            None | Some(Json::Null) => None,
            Some(b) => Some(b.as_bool().ok_or(ReportError::Malformed("states_differ"))?),
        },
        stats: ClassifyStats {
            primaries: req_u64(stats, "primaries")?,
            alternates: req_u64(stats, "alternates")?,
            preemptions: req_u64(stats, "preemptions")?,
            dependent_branches: req_u64(stats, "dependent_branches")?,
            instructions: req_u64(stats, "instructions")?,
            max_path_instructions: req_u64(stats, "max_path_instructions")?,
            bytes_copied_on_fork: req_u64(stats, "bytes_copied_on_fork")?,
            bytes_shared_on_fork: req_u64(stats, "bytes_shared_on_fork")?,
            slices_reused_at_fork: req_u64(stats, "slices_reused_at_fork")?,
        },
        detail: detail_from(
            v.get("detail")
                .ok_or(ReportError::Malformed("verdict detail"))?,
        )?,
    })
}

fn detail_from(v: &Json) -> Result<DetailReport, ReportError> {
    match req_str(v, "type")? {
        "spec_violation" => Ok(DetailReport::SpecViolation {
            column: req_str(v, "column")?.to_string(),
            message: req_str(v, "message")?.to_string(),
            inputs: i64_arr(v, "inputs")?,
            schedule: v
                .get("schedule")
                .and_then(Json::as_arr)
                .ok_or(ReportError::Malformed("schedule"))?
                .iter()
                .map(|x| x.as_u64().ok_or(ReportError::Malformed("schedule")))
                .collect::<Result<_, _>>()?,
            description: req_str(v, "description")?.to_string(),
        }),
        "output_diff" => Ok(DetailReport::OutputDiff(OutputDiffEvidence {
            position: req_usize(v, "position")?,
            primary: req_str(v, "primary")?.to_string(),
            alternate: req_str(v, "alternate")?.to_string(),
            primary_fd: match v.get("primary_fd") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_i64().ok_or(ReportError::Malformed("primary_fd"))?),
            },
            alternate_fd: match v.get("alternate_fd") {
                None | Some(Json::Null) => None,
                Some(x) => Some(x.as_i64().ok_or(ReportError::Malformed("alternate_fd"))?),
            },
            primary_len: req_usize(v, "primary_len")?,
            alternate_len: req_usize(v, "alternate_len")?,
            primary_loc: req_str(v, "primary_loc")?.to_string(),
            inputs: i64_arr(v, "inputs")?,
        })),
        "k_witness" => Ok(DetailReport::KWitness),
        "adhoc_sync" => Ok(DetailReport::AdHocSync),
        _ => Err(ReportError::Malformed("unknown detail type")),
    }
}

fn farm_from(v: &Json) -> Result<FarmStats, ReportError> {
    Ok(FarmStats {
        jobs: req_u64(v, "jobs")?,
        wall: dur_from(v, "wall_ns")?,
        busy_total: dur_from(v, "busy_total_ns")?,
        per_worker: v
            .get("per_worker")
            .and_then(Json::as_arr)
            .ok_or(ReportError::Malformed("per_worker"))?
            .iter()
            .map(|w| {
                Ok(WorkerStats {
                    jobs: req_u64(w, "jobs")?,
                    steals: req_u64(w, "steals")?,
                    busy: dur_from(w, "busy_ns")?,
                    slice_jobs: req_u64(w, "slice_jobs")?,
                })
            })
            .collect::<Result<_, ReportError>>()?,
        steals: req_u64(v, "steals")?,
        budget_overruns: req_u64(v, "budget_overruns")?,
        cache: match v.get("cache") {
            None | Some(Json::Null) => None,
            Some(c) => Some(cache_from(c)?),
        },
        fork_bytes_copied: req_u64(v, "fork_bytes_copied")?,
        fork_bytes_shared: req_u64(v, "fork_bytes_shared")?,
        fork_slices_reused: req_u64(v, "fork_slices_reused")?,
        slices_offloaded: req_u64(v, "slices_offloaded")?,
        slice_parallel_wall_saved: dur_from(v, "slice_parallel_wall_saved_ns")?,
        single_flight: match v.get("single_flight") {
            None | Some(Json::Null) => None,
            Some(sf) => Some(SingleFlightStats {
                claims: req_u64(sf, "claims")?,
                slices_deduped: req_u64(sf, "slices_deduped")?,
                single_flight_waits: req_u64(sf, "single_flight_waits")?,
            }),
        },
        dispatch: match v.get("dispatch") {
            None | Some(Json::Null) => None,
            Some(d) => Some(DispatchSnapshot {
                batches_dispatched: req_u64(d, "batches_dispatched")?,
                batched_jobs: req_u64(d, "batched_jobs")?,
                threshold_now: match d.get("threshold_now") {
                    None | Some(Json::Null) => None,
                    Some(t) => Some(t.as_u64().ok_or(ReportError::Malformed("threshold_now"))?),
                },
            }),
        },
        static_pass: match v.get("static") {
            None | Some(Json::Null) => None,
            Some(s) => Some(static_from(s)?),
        },
    })
}

fn cache_from(v: &Json) -> Result<CacheSnapshot, ReportError> {
    Ok(CacheSnapshot {
        hits: req_u64(v, "hits")?,
        misses: req_u64(v, "misses")?,
        slice_hits: req_u64(v, "slice_hits")?,
        slice_misses: req_u64(v, "slice_misses")?,
        key_bytes: req_u64(v, "key_bytes")?,
        entries: req_u64(v, "entries")?,
        evictions: req_u64(v, "evictions")?,
        second_chances: req_u64(v, "second_chances")?,
        warmed: req_u64(v, "warmed")?,
        warm_hits: req_u64(v, "warm_hits")?,
        warm_validations: req_u64(v, "warm_validations")?,
        warm_mismatches: req_u64(v, "warm_mismatches")?,
        warm_rejected_fingerprint: req_u64(v, "warm_rejected_fingerprint")?,
    })
}

fn static_from(v: &Json) -> Result<StaticStats, ReportError> {
    Ok(StaticStats {
        candidates: req_u64(v, "candidates")?,
        pruned: req_u64(v, "pruned")?,
        corroborated: req_u64(v, "corroborated")?,
    })
}

fn events_from(v: &Json) -> Result<EventSummary, ReportError> {
    Ok(EventSummary {
        total: req_u64(v, "total")?,
        counts: v
            .get("counts")
            .and_then(Json::as_obj)
            .ok_or(ReportError::Malformed("counts"))?
            .iter()
            .map(|(k, n)| {
                Ok((
                    k.clone(),
                    n.as_u64().ok_or(ReportError::Malformed("counts"))?,
                ))
            })
            .collect::<Result<_, ReportError>>()?,
        solver_checks: req_u64(v, "solver_checks")?,
        slices_examined: req_u64(v, "slices_examined")?,
        nodes_visited: req_u64(v, "nodes_visited")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{RaceClass, ReplayEvidence, SpecViolationKind};
    use portend_vm::ThreadId;

    fn sample_report() -> RunReport {
        let verdict = Verdict {
            class: RaceClass::SpecViolated,
            detail: VerdictDetail::SpecViolation {
                kind: SpecViolationKind::Semantic {
                    message: "ts < 0".into(),
                },
                replay: ReplayEvidence {
                    inputs: vec![3, -7],
                    schedule: vec![ThreadId(0), ThreadId(2), ThreadId(1)],
                    description: "negative timestamp printed".into(),
                },
            },
            k: 0,
            states_differ: Some(true),
            stats: ClassifyStats {
                primaries: 5,
                alternates: 10,
                instructions: 123_456,
                bytes_copied_on_fork: 1 << 40,
                ..Default::default()
            },
        };
        RunReport {
            label: "sample \"quoted\"\nlabel".into(),
            record_time: Duration::from_micros(1500),
            races: vec![
                RaceOutcome {
                    alloc_name: "balance".into(),
                    offset: 4,
                    instances: 12,
                    display: "balance[4]: W@t1 / R@t2".into(),
                    time: Duration::from_millis(31),
                    verdict: Ok(VerdictReport::from_verdict(&verdict)),
                },
                RaceOutcome {
                    alloc_name: "flag".into(),
                    offset: 0,
                    instances: 1,
                    display: "flag[0]".into(),
                    time: Duration::from_nanos(999),
                    verdict: Err("race not reproducible".into()),
                },
            ],
            farm: Some(FarmStats {
                jobs: 2,
                wall: Duration::from_millis(40),
                busy_total: Duration::from_millis(62),
                per_worker: vec![
                    WorkerStats {
                        jobs: 1,
                        steals: 1,
                        busy: Duration::from_millis(31),
                        slice_jobs: 4,
                    },
                    WorkerStats::default(),
                ],
                steals: 1,
                cache: Some(CacheSnapshot {
                    hits: 7,
                    misses: 3,
                    ..Default::default()
                }),
                fork_bytes_copied: u64::MAX,
                single_flight: Some(SingleFlightStats {
                    claims: 9,
                    slices_deduped: 4,
                    single_flight_waits: 5,
                }),
                dispatch: Some(DispatchSnapshot {
                    batches_dispatched: 3,
                    batched_jobs: 11,
                    threshold_now: Some(4),
                }),
                ..Default::default()
            }),
            cache: Some(CacheSnapshot {
                hits: 7,
                misses: 3,
                slice_hits: 40,
                slice_misses: 8,
                key_bytes: 1 << 20,
                entries: 48,
                evictions: 1,
                second_chances: 2,
                warmed: 30,
                warm_hits: 25,
                warm_validations: 3,
                warm_mismatches: 0,
                warm_rejected_fingerprint: 1,
            }),
            static_pass: Some(StaticStats {
                candidates: 14,
                pruned: 6,
                corroborated: 2,
            }),
            events: Some(EventSummary {
                total: 60,
                counts: vec![("phase".into(), 2), ("solver_check".into(), 58)],
                solver_checks: 58,
                slices_examined: 174,
                nodes_visited: 9_000,
            }),
        }
    }

    #[test]
    fn report_round_trips_structurally() {
        let report = sample_report();
        let rendered = report.to_json();
        let parsed = RunReport::from_json(&rendered).expect("own documents parse");
        assert_eq!(parsed, report);
        // And the canonical rendering is stable under the cycle.
        assert_eq!(parsed.to_json(), rendered);
    }

    #[test]
    fn report_rejects_wrong_format_and_version() {
        let report = sample_report();
        let rendered = report.to_json();
        let bumped = rendered.replacen(
            &format!("\"version\":{REPORT_FORMAT_VERSION}"),
            &format!("\"version\":{}", REPORT_FORMAT_VERSION + 1),
            1,
        );
        assert!(matches!(
            RunReport::from_json(&bumped),
            Err(ReportError::UnsupportedVersion(v)) if v == REPORT_FORMAT_VERSION + 1
        ));
        let renamed = rendered.replacen(REPORT_FORMAT_NAME, "some-other-format", 1);
        assert!(matches!(
            RunReport::from_json(&renamed),
            Err(ReportError::BadFormat)
        ));
        assert!(matches!(
            RunReport::from_json("{\"truncated\":"),
            Err(ReportError::Json(_))
        ));
    }

    #[test]
    fn harmful_counts_spec_violations_only() {
        let report = sample_report();
        assert_eq!(report.harmful(), 1);
    }
}
