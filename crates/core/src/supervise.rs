//! Supervised execution: drives a machine while multiplexing race
//! watchpoints, semantic-predicate watchpoints, suspension, and budgets.
//!
//! This is the shared plumbing under Algorithm 1 (single-pre/single-post),
//! the multi-path explorer, and alternate-schedule execution.

use std::collections::BTreeSet;

use portend_symex::Expr;
use portend_vm::{
    drive, DriveCfg, DriveStop, Machine, NullMonitor, Scheduler, StepEvent, ThreadId, VmError,
    Watch, WatchHit,
};

use crate::case::Predicate;

/// Why a supervised run returned.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SupStop {
    /// All threads exited (predicates held throughout).
    Completed,
    /// A crash or deadlock.
    Error(VmError),
    /// The instruction budget ran out.
    Timeout,
    /// Only suspended threads could make progress.
    Stuck,
    /// A *race* watchpoint is pending (not yet executed).
    RaceHit(WatchHit),
    /// A semantic predicate was violated.
    Semantic(String),
    /// A symbolic branch needs forking (multi-path explorer only).
    SymBranch {
        /// Branch condition.
        cond: Expr,
        /// Target when non-zero.
        then_b: portend_vm::BlockId,
        /// Target when zero.
        else_b: portend_vm::BlockId,
    },
    /// A symbolic assertion needs forking.
    SymAssert {
        /// Asserted condition.
        cond: Expr,
        /// Assertion message.
        msg: String,
    },
}

/// Watchpoint-multiplexing execution driver.
#[derive(Debug, Clone)]
pub(crate) struct Supervisor {
    /// Watches that stop execution and surface as [`SupStop::RaceHit`].
    pub race_watches: Vec<Watch>,
    /// Watches treated as preemption points (post-race diversification).
    pub preempt_watches: Vec<Watch>,
    /// Threads excluded from scheduling.
    pub suspended: BTreeSet<ThreadId>,
    /// Remaining instruction budget (consumed across calls).
    pub budget: u64,
    /// Instructions executed under this supervisor, across all calls.
    /// Unlike `budget` (which callers reset between phases), this is a
    /// monotone counter of real work, suitable for Table 4 accounting.
    pub executed: u64,
    /// Preemption points the driven machine hit under this supervisor.
    pub preempted: u64,
}

impl Supervisor {
    /// A supervisor with the given budget and no watches.
    pub fn new(budget: u64) -> Self {
        Supervisor {
            race_watches: Vec::new(),
            preempt_watches: Vec::new(),
            suspended: BTreeSet::new(),
            budget,
            executed: 0,
            preempted: 0,
        }
    }

    /// Runs until a [`SupStop`] condition, transparently servicing
    /// predicate watchpoints (step over the write, re-check the predicate).
    pub fn run(
        &mut self,
        m: &mut Machine,
        sched: &mut Scheduler,
        predicates: &[Predicate],
    ) -> SupStop {
        loop {
            if self.budget == 0 {
                return SupStop::Timeout;
            }
            let mut watches = self.race_watches.clone();
            for p in predicates {
                watches.extend_from_slice(&p.watches);
            }
            let cfg = DriveCfg {
                max_steps: self.budget,
                watches,
                preempt_watches: self.preempt_watches.clone(),
                suspended: self.suspended.clone(),
                record_schedule: true,
            };
            let before = m.steps;
            let before_preempt = m.preemptions;
            let stop = drive(m, sched, &mut NullMonitor, &cfg);
            let ran = m.steps.saturating_sub(before);
            self.budget = self.budget.saturating_sub(ran);
            self.executed += ran;
            self.preempted += m.preemptions.saturating_sub(before_preempt);
            match stop {
                DriveStop::WatchHit(h) => {
                    if hit_matches_any(&h, &self.race_watches) {
                        return SupStop::RaceHit(h);
                    }
                    // A predicate watch: execute the access, then check.
                    if let Some(stop) = self.step_over_checked(m, predicates) {
                        return stop;
                    }
                }
                DriveStop::Completed => {
                    if let Some(msg) = check_predicates(predicates, m) {
                        return SupStop::Semantic(msg);
                    }
                    return SupStop::Completed;
                }
                DriveStop::Error(e) => return SupStop::Error(e),
                DriveStop::StepLimit => return SupStop::Timeout,
                DriveStop::Stuck => return SupStop::Stuck,
                DriveStop::SymBranch {
                    cond,
                    then_b,
                    else_b,
                } => {
                    return SupStop::SymBranch {
                        cond,
                        then_b,
                        else_b,
                    }
                }
                DriveStop::SymAssert { cond, msg } => return SupStop::SymAssert { cond, msg },
            }
        }
    }

    /// Executes the pending (watched) instruction, then re-checks the
    /// predicates. Returns `Some` when that surfaces a stop condition.
    ///
    /// Only predicates that *declare watches* are evaluated here: they
    /// opted into observing transient states. Watch-free predicates are
    /// exit-time properties, evaluated only on completion (e.g. fmm's
    /// "timestamps used are positive" — transient negatives that get
    /// overwritten are fine, paper §5.1).
    pub fn step_over_checked(
        &mut self,
        m: &mut Machine,
        predicates: &[Predicate],
    ) -> Option<SupStop> {
        let before = m.steps;
        let event = m.step(&mut NullMonitor);
        self.executed += m.steps.saturating_sub(before);
        match event {
            StepEvent::Ran | StepEvent::Blocked | StepEvent::Exited => {}
            StepEvent::Err(e) => return Some(SupStop::Error(e)),
            StepEvent::SymBranch {
                cond,
                then_b,
                else_b,
            } => {
                return Some(SupStop::SymBranch {
                    cond,
                    then_b,
                    else_b,
                })
            }
            StepEvent::SymAssert { cond, msg } => return Some(SupStop::SymAssert { cond, msg }),
        }
        self.budget = self.budget.saturating_sub(1);
        for p in predicates {
            if p.watches.is_empty() {
                continue;
            }
            if let Some(msg) = p.check(m) {
                return Some(SupStop::Semantic(format!("{}: {msg}", p.name)));
            }
        }
        None
    }
}

/// Evaluates all predicates; the first violation message wins.
pub(crate) fn check_predicates(predicates: &[Predicate], m: &Machine) -> Option<String> {
    for p in predicates {
        if let Some(msg) = p.check(m) {
            return Some(format!("{}: {msg}", p.name));
        }
    }
    None
}

/// Whether a watch hit matches any of the given watches.
pub(crate) fn hit_matches_any(h: &WatchHit, watches: &[Watch]) -> bool {
    watches.iter().any(|w| {
        w.alloc == h.alloc
            && w.offset.is_none_or(|o| o == h.offset)
            && w.tid.is_none_or(|t| t == h.tid)
            && (!w.writes_only || h.is_write)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use portend_vm::{
        AllocId, InputMode, InputSource, InputSpec, Operand, ProgramBuilder, VmConfig,
    };
    use std::sync::Arc;

    #[test]
    fn predicate_watch_catches_transient_violation() {
        // g is set to -1 then immediately overwritten with +1: an
        // end-of-run check would miss it, the watchpoint does not.
        let mut pb = ProgramBuilder::new("t", "t.c");
        let g = pb.global("g", 0);
        let main = pb.func("main", |f| {
            f.store(g, Operand::Imm(0), Operand::Imm(-1));
            f.store(g, Operand::Imm(0), Operand::Imm(1));
            f.ret(None);
        });
        let prog = Arc::new(pb.build(main).unwrap());
        let mut m = Machine::new(
            prog,
            InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
            VmConfig::default(),
        );
        let pred = Predicate::new("nonneg", vec![Watch::cell(AllocId(0), 0)], |m: &Machine| {
            let v = m.mem.load(AllocId(0), 0).ok()?.as_concrete()?;
            (v < 0).then(|| format!("g = {v}"))
        });
        let mut sup = Supervisor::new(10_000);
        let mut sched = Scheduler::Cooperative;
        let stop = sup.run(&mut m, &mut sched, &[pred]);
        assert_eq!(stop, SupStop::Semantic("nonneg: g = -1".into()));
    }

    #[test]
    fn race_watch_takes_priority_and_budget_counts() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let g = pb.global("g", 0);
        let main = pb.func("main", |f| {
            f.store(g, Operand::Imm(0), Operand::Imm(1));
            f.ret(None);
        });
        let prog = Arc::new(pb.build(main).unwrap());
        let mut m = Machine::new(
            prog,
            InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
            VmConfig::default(),
        );
        let mut sup = Supervisor::new(10_000);
        sup.race_watches.push(Watch::cell(AllocId(0), 0));
        let mut sched = Scheduler::Cooperative;
        match sup.run(&mut m, &mut sched, &[]) {
            SupStop::RaceHit(h) => assert!(h.is_write),
            other => panic!("{other:?}"),
        }
        // The watched store is the first instruction: nothing ran yet.
        assert_eq!(sup.budget, 10_000);
        // Step over (consumes budget), then it completes.
        assert!(sup.step_over_checked(&mut m, &[]).is_none());
        assert!(sup.budget < 10_000);
        let stop = sup.run(&mut m, &mut sched, &[]);
        assert_eq!(stop, SupStop::Completed);
    }

    #[test]
    fn zero_budget_times_out() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let main = pb.func("main", |f| f.ret(None));
        let prog = Arc::new(pb.build(main).unwrap());
        let mut m = Machine::new(
            prog,
            InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
            VmConfig::default(),
        );
        let mut sup = Supervisor::new(0);
        let mut sched = Scheduler::Cooperative;
        assert_eq!(sup.run(&mut m, &mut sched, &[]), SupStop::Timeout);
    }
}
