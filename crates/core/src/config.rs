//! Portend configuration: the Mp/Ma "dial", the analysis-stage toggles,
//! and the parallel-classification farm knobs.

use std::path::PathBuf;
use std::time::Duration;

use portend_farm::FarmConfig;
use portend_obs::TraceConfig;
use portend_symex::{SolverConfig, WarmPolicy};

/// Which analysis techniques are enabled — the axes of the paper's Fig. 7
/// accuracy breakdown. All stages build on single-pre/single-post
/// analysis (always on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisStages {
    /// Distinguish ad-hoc synchronization from true hangs when the
    /// alternate schedule cannot be enforced (paper §3.2). When disabled,
    /// enforcement failures are conservatively classified "spec violated"
    /// (the behavior of replay-based classifiers, §5.4).
    pub adhoc_detection: bool,
    /// Multi-path analysis with symbolic inputs (Algorithm 2, §3.3).
    pub multi_path: bool,
    /// Post-race schedule randomization for alternates (§3.4).
    pub multi_schedule: bool,
}

impl AnalysisStages {
    /// Everything on (Portend's default).
    pub fn full() -> Self {
        AnalysisStages {
            adhoc_detection: true,
            multi_path: true,
            multi_schedule: true,
        }
    }

    /// Single-pre/single-post only (the Fig. 7 baseline bar).
    pub fn single_path() -> Self {
        AnalysisStages {
            adhoc_detection: false,
            multi_path: false,
            multi_schedule: false,
        }
    }
}

impl Default for AnalysisStages {
    fn default() -> Self {
        Self::full()
    }
}

/// Portend's configuration (paper §3.3: "Portend offers two parameters to
/// control this growth: an upper bound Mp on the number of primary paths
/// explored, and the number and size of symbolic inputs"; §3.4 adds Ma).
#[derive(Debug, Clone, PartialEq)]
pub struct PortendConfig {
    /// Upper bound on primary paths explored (paper's `Mp`; evaluation
    /// uses 5).
    pub mp: usize,
    /// Alternate schedules per primary (paper's `Ma`; evaluation uses 2).
    pub ma: usize,
    /// Enabled analysis stages.
    pub stages: AnalysisStages,
    /// Instruction budget for replaying to the race and for each
    /// post-race continuation.
    pub step_budget: u64,
    /// Instruction budget for the alternate-ordering enforcement attempt,
    /// per the paper a multiple of the primary's cost ("5 times what it
    /// took Portend to replay the primary execution", §4).
    pub enforce_budget_factor: u64,
    /// Bound on exploration states queued during multi-path analysis
    /// (guards against pathological fork explosion).
    pub max_exploration_states: usize,
    /// Seed for alternate-schedule randomization.
    pub schedule_seed: u64,
    /// Solver configuration.
    pub solver: SolverConfig,
    /// Run the static lockset/MHP pre-analysis (`portend-sa`) over the
    /// program before classification. The pass is pure scheduling and
    /// reporting: clusters whose representative pair the analysis
    /// proves ordered (lock-protected or never parallel) are demoted in
    /// the farm's priority queue, statically race-like pairs (may
    /// happen in parallel, no common lock) are boosted, and the pass's
    /// counters surface as `StaticStats` on `FarmStats`/`RunReport`.
    /// Verdicts are byte-identical with the pass on or off (pinned by
    /// `tests/static_differential.rs`).
    pub static_pass: bool,
    /// Solve path-condition queries by constraint slicing (partitioning
    /// on variable connectivity and memoizing per slice — see
    /// `portend_symex::slice`). Slicing never flips a decided
    /// satisfiability answer; it can only decide queries whole-query
    /// solving would abandon at the node budget, and it is what lets
    /// the shared pre-race constraint prefix hit the solver cache across
    /// Mp × Ma path/schedule combinations. Disable to force whole-query
    /// solving.
    pub slice_solver: bool,
    /// Parallel-classification farm knobs (used by
    /// `Pipeline::run_parallel`; ignored by the serial path).
    pub farm: FarmKnobs,
    /// Event tracing (`portend-obs`). `None` (the default) records
    /// nothing and costs nothing — every emission site collapses to one
    /// thread-local read. `Some` records phase/solver/farm/cache events
    /// into per-thread lanes, returns the merged
    /// [`portend_obs::Trace`] on the pipeline result, and optionally
    /// exports a Chrome trace and a versioned
    /// [`crate::RunReport`] to the configured paths. Tracing never
    /// changes a verdict or a stats counter: the recorder only
    /// *observes* (see the equivalence tests in `tests/run_report.rs`).
    pub trace: Option<TraceConfig>,
}

impl Default for PortendConfig {
    fn default() -> Self {
        PortendConfig {
            mp: 5,
            ma: 2,
            stages: AnalysisStages::full(),
            step_budget: 400_000,
            enforce_budget_factor: 5,
            max_exploration_states: 256,
            schedule_seed: 0x9e3779b9,
            solver: SolverConfig::default(),
            static_pass: true,
            slice_solver: true,
            farm: FarmKnobs::default(),
            trace: None,
        }
    }
}

/// Knobs for the parallel classification farm (`crates/farm`).
///
/// None of these can change a verdict: the farm only reorders *when* each
/// race is classified, and the shared solver cache is answer-preserving
/// by construction (its key captures the entire solver call).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmKnobs {
    /// Default worker count when `run_parallel` is called with `0`.
    /// `0` here too means "one worker per available CPU".
    pub workers: usize,
    /// Soft wall-clock budget per classification job, in milliseconds;
    /// `0` disables it. Overruns are *counted* (`FarmStats`), never
    /// killed — killing would make verdicts depend on host timing.
    pub job_time_budget_ms: u64,
    /// Share one sharded solver-query cache across all jobs of a run, so
    /// equivalent path-constraint checks across races and schedules are
    /// solved once.
    pub solver_cache: bool,
    /// Shard count of the shared solver cache.
    pub cache_shards: usize,
    /// Classify suspected-harmful races first (detector heuristics).
    pub priority_order: bool,
    /// Persistent warm store for the solver cache. When set, the
    /// pipeline loads memoized answers from this path before
    /// classifying (a missing or damaged file is a clean cold start)
    /// and saves the cache's hot entries back after the run, so a
    /// second run over the same program skips the solves the first one
    /// already paid for. Cross-run reuse is answer-preserving: keys are
    /// self-contained, the store is versioned and checksummed, and the
    /// first warm hits are validation-sampled against fresh solves
    /// (`CacheSnapshot::warm_mismatches`). Ignored when `solver_cache`
    /// is off.
    pub cache_path: Option<PathBuf>,
    /// Which entries [`FarmKnobs::cache_path`] persists: entries that
    /// survived an epoch flush or were hit at least `min_hits` times,
    /// hottest first, up to a byte budget (see
    /// [`portend_symex::WarmPolicy`]).
    pub cache_save_policy: WarmPolicy,
    /// Solve cold constraint slices of one feasibility query in
    /// parallel on the farm's idle workers (`Farm::run_lending` +
    /// `portend_symex::ParallelSlices`). A worker whose job queue ran
    /// dry picks up slice-sized sub-jobs from a busy peer, so the run's
    /// tail — one race with many simultaneously-cold slices — stops
    /// serializing inside a single worker. Verdicts, models, and the
    /// examined-slice counters are byte-identical to sequential slice
    /// solving (the dispatch merges in slice order and cancels exactly
    /// what the serial UNSAT short-circuit would skip); only shared-
    /// cache traffic and wall time differ. Ignored when `slice_solver`
    /// is off; the serial `Pipeline::run` never dispatches.
    pub parallel_slices: bool,
    /// Minimum *cold* slices (local-memo / shared-cache / domain-hint
    /// misses) one query must have before its slices are dispatched;
    /// below the threshold the query solves sequentially. Floored at 2
    /// at the read site (`ParallelSlices::cold_threshold` — there is
    /// nothing to fan out below that).
    pub parallel_min_cold_slices: usize,
    /// Single-flight dedup on the shared cache's slice-key namespace:
    /// when two workers miss the cache on the *same* cold slice
    /// concurrently (identical canonical key, typically the shared
    /// pre-race prefix of two clusters), the second blocks on the
    /// first's publication instead of solving it again. Answer-
    /// preserving — a deduped requester observes exactly what its own
    /// cache hit would have returned — so verdicts cannot move.
    /// Ignored when `solver_cache` is off (there is no shared key
    /// namespace to dedup on).
    pub single_flight: bool,
    /// Offer each check's dispatchable cold slices to the slice pool
    /// as *one* batch (one queue lock + one wakeup sweep) instead of
    /// per-job handoffs. Which slices run where is unchanged — pure
    /// handoff-overhead amortization. Ignored when `parallel_slices`
    /// is off.
    pub batch_dispatch: bool,
    /// Let the slice pool tune the cold-slice dispatch threshold from
    /// observed saved-per-offload (windowed estimator fed by
    /// `slice_parallel_wall_saved`): the bar rises when dispatch
    /// overhead dominates and falls back when the cold tail is long.
    /// [`FarmKnobs::parallel_min_cold_slices`] stays the floor the
    /// threshold can never drop below. Ignored when `parallel_slices`
    /// is off.
    pub adaptive_dispatch: bool,
}

impl Default for FarmKnobs {
    fn default() -> Self {
        FarmKnobs {
            workers: 0,
            job_time_budget_ms: 0,
            solver_cache: true,
            cache_shards: portend_symex::DEFAULT_SHARDS,
            priority_order: true,
            cache_path: None,
            cache_save_policy: WarmPolicy::default(),
            parallel_slices: true,
            parallel_min_cold_slices: 2,
            single_flight: true,
            batch_dispatch: true,
            adaptive_dispatch: true,
        }
    }
}

impl FarmKnobs {
    /// Enables the persistent warm store at `path` with the default
    /// save policy (the "run it twice" configuration).
    pub fn with_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// The farm configuration for one run. `workers` overrides the knob
    /// when non-zero.
    pub fn farm_config(&self, workers: usize) -> FarmConfig {
        FarmConfig {
            workers: if workers == 0 { self.workers } else { workers },
            job_time_budget: (self.job_time_budget_ms > 0)
                .then(|| Duration::from_millis(self.job_time_budget_ms)),
            priority_order: self.priority_order,
        }
    }
}

impl PortendConfig {
    /// The `k` this configuration can certify: `Mp × Ma` (paper §3.4).
    pub fn k(&self) -> u64 {
        (self.mp * self.ma.max(1)) as u64
    }

    /// The knob matrix the conformance suite sweeps: the full cube over
    /// `slice_solver` × `static_pass` × `farm.single_flight`, each cell
    /// labeled `slice=±,static=±,sflight=±`. Every configuration must
    /// produce verdicts byte-identical to the default — these knobs are
    /// performance/scheduling dials, never classification dials — so the
    /// differential table in `tests/conformance.rs` runs each labeled
    /// idiom under all eight.
    pub fn knob_grid() -> Vec<(String, PortendConfig)> {
        let mut grid = Vec::with_capacity(8);
        for &slice in &[true, false] {
            for &stat in &[true, false] {
                for &sflight in &[true, false] {
                    let label = format!(
                        "slice={}static={}sflight={}",
                        if slice { "+," } else { "-," },
                        if stat { "+," } else { "-," },
                        if sflight { "+" } else { "-" },
                    );
                    let cfg = PortendConfig {
                        slice_solver: slice,
                        static_pass: stat,
                        farm: FarmKnobs {
                            single_flight: sflight,
                            ..Default::default()
                        },
                        ..Default::default()
                    };
                    grid.push((label, cfg));
                }
            }
        }
        grid
    }

    /// A configuration targeting a specific `k` by adjusting `Mp` while
    /// keeping `Ma = 2` where possible (used by the Fig. 10 sweep).
    pub fn with_k(k: usize) -> Self {
        let (mp, ma) = if k <= 1 {
            (1, 1)
        } else if k.is_multiple_of(2) {
            (k / 2, 2)
        } else {
            (k, 1)
        };
        PortendConfig {
            mp,
            ma,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_evaluation() {
        let c = PortendConfig::default();
        assert_eq!(c.mp, 5);
        assert_eq!(c.ma, 2);
        assert_eq!(c.k(), 10);
        assert!(c.stages.adhoc_detection);
    }

    #[test]
    fn with_k_hits_target() {
        assert_eq!(PortendConfig::with_k(1).k(), 1);
        assert_eq!(PortendConfig::with_k(6).k(), 6);
        assert_eq!(PortendConfig::with_k(7).k(), 7);
        assert_eq!(PortendConfig::with_k(10).k(), 10);
    }

    #[test]
    fn knob_grid_covers_the_cube() {
        let grid = PortendConfig::knob_grid();
        assert_eq!(grid.len(), 8);
        // Labels are unique and each axis takes both values.
        let labels: std::collections::BTreeSet<_> = grid.iter().map(|(l, _)| l.clone()).collect();
        assert_eq!(labels.len(), 8);
        assert!(grid.iter().any(|(_, c)| c.slice_solver));
        assert!(grid.iter().any(|(_, c)| !c.slice_solver));
        assert!(grid.iter().any(|(_, c)| c.static_pass));
        assert!(grid.iter().any(|(_, c)| !c.static_pass));
        assert!(grid.iter().any(|(_, c)| c.farm.single_flight));
        assert!(grid.iter().any(|(_, c)| !c.farm.single_flight));
        // The all-on cell is the default configuration.
        let all_on = &grid
            .iter()
            .find(|(l, _)| l == "slice=+,static=+,sflight=+")
            .expect("all-on cell")
            .1;
        assert_eq!(*all_on, PortendConfig::default());
    }

    #[test]
    fn stage_presets() {
        assert!(!AnalysisStages::single_path().multi_path);
        assert!(AnalysisStages::full().multi_schedule);
    }

    #[test]
    fn parallel_slice_knobs_default_on_with_threshold() {
        let knobs = FarmKnobs::default();
        assert!(knobs.parallel_slices);
        assert_eq!(knobs.parallel_min_cold_slices, 2);
        assert!(knobs.single_flight);
        assert!(knobs.batch_dispatch);
        assert!(knobs.adaptive_dispatch);
    }

    #[test]
    fn farm_knobs_translate_to_farm_config() {
        let knobs = FarmKnobs {
            workers: 2,
            job_time_budget_ms: 250,
            ..Default::default()
        };
        let fc = knobs.farm_config(0);
        assert_eq!(fc.workers, 2);
        assert_eq!(fc.job_time_budget, Some(Duration::from_millis(250)));
        // A non-zero call-site worker count overrides the knob.
        assert_eq!(knobs.farm_config(8).workers, 8);
        // Budget 0 means unlimited.
        assert_eq!(FarmKnobs::default().farm_config(4).job_time_budget, None);
    }
}
