//! The end-to-end pipeline: run the program under the race detector,
//! cluster the reports, classify every cluster (paper Fig. 2) — serially
//! ([`Pipeline::run`]) or on the work-stealing classification farm
//! ([`Pipeline::run_parallel`]).

use std::sync::Arc;
use std::time::{Duration, Instant};

use portend_farm::{
    cluster_priority, static_adjusted_priority, Farm, FarmStats, JobSpec, SlicePool, StaticHint,
};
use portend_obs::{EventKind, Recorder, Trace, TraceConfig};
use portend_race::{DetectorConfig, RaceCluster};
use portend_replay::{record, RecordConfig, RecordedRun};
use portend_sa::StaticStats;
use portend_symex::{CacheSnapshot, ParallelSlices, SliceExecutor};
use portend_vm::{InputSpec, Program, Scheduler, VmConfig};

use crate::case::{AnalysisCase, Predicate};
use crate::classify::{ClassifyError, Portend};
use crate::config::PortendConfig;
use crate::runreport::RunReport;
use crate::taxonomy::Verdict;
use crate::warm::WarmSource;

/// Exports the finished trace per the [`TraceConfig`] — Chrome trace
/// JSON and/or the versioned [`RunReport`] — and attaches the merged
/// trace to the result so callers (and the equivalence tests) can
/// inspect it in-process. Export failures are swallowed for the same
/// reason warm-store saves are: observability is an optimization, the
/// verdicts are already computed.
fn finish_trace(
    cfg: &TraceConfig,
    recorder: &Recorder,
    result: &mut PipelineResult,
    farm: Option<&FarmStats>,
) {
    let trace = recorder.finish();
    if let Some(path) = &cfg.chrome_path {
        let _ = trace.write_chrome(path);
    }
    if let Some(path) = &cfg.report_path {
        let mut report = RunReport::from_result(cfg.label.clone(), result).with_trace(&trace);
        if let Some(stats) = farm {
            report = report.with_farm(stats.clone());
        }
        let _ = report.write_to(path);
    }
    result.trace = Some(trace);
}

/// Runs the static lockset/MHP pre-analysis over the program and maps
/// its candidate set onto the run's clusters: a scheduling hint per
/// cluster plus the pass's counters (including how many clusters the
/// candidate set corroborates). Purely advisory — hints only reorder
/// the farm queue, and the serial path ignores them entirely.
fn static_phase(
    program: &Program,
    clusters: &[RaceCluster],
    detector: &DetectorConfig,
) -> (Vec<Option<StaticHint>>, StaticStats) {
    let mut span = portend_obs::span_named(EventKind::StaticPass, "static_pass");
    let sa = portend_sa::analyze(program);
    let mut stats = sa.stats();
    // Lock-based pruning mirrors the detector's mutex happens-before
    // edges; when those are configured away (§5.2's imperfect-detector
    // experiment), a lock-protected pair can genuinely be reported.
    let respect_locks = !detector.ignore_mutexes;
    let hints = clusters
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let rep = &c.representative;
            let (lo, hi) = rep.pc_pair();
            if sa.covers(rep.alloc, lo, hi, respect_locks) {
                stats.corroborated += 1;
            }
            match sa.lookup(rep.alloc, lo, hi) {
                Some(cand) if cand.mhp && cand.common_locks.is_empty() => Some(StaticHint::Boost),
                Some(cand) => {
                    portend_obs::instant(
                        EventKind::StaticPrune,
                        i as u64,
                        if cand.mhp { 1 } else { 2 },
                    );
                    Some(StaticHint::Demote)
                }
                // The detector reported a pair the enumerator never saw;
                // the differential suite treats this as a soundness bug,
                // the pipeline just declines to hint.
                None => None,
            }
        })
        .collect();
    span.args(stats.candidates, stats.pruned);
    (hints, stats)
}

/// One classified race: the cluster, the verdict (or failure), and how
/// long classification took (feeds Table 4 and Fig. 9).
#[derive(Debug, Clone)]
pub struct AnalyzedRace {
    /// The race cluster (representative + instance count).
    pub cluster: RaceCluster,
    /// Portend's verdict.
    pub verdict: Result<Verdict, ClassifyError>,
    /// Wall-clock classification time for this race.
    pub time: Duration,
}

/// The result of one full detect-and-classify pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The recording run (trace, all race instances, output).
    pub record: RecordedRun,
    /// One entry per distinct race, in detection order.
    pub analyzed: Vec<AnalyzedRace>,
    /// Wall-clock time of the recording phase.
    pub record_time: Duration,
    /// The analysis case shared by all classifications (program, trace,
    /// symbolic inputs, predicates).
    pub case: AnalysisCase,
    /// Solver-cache counters for the run (whole-query and slice-level
    /// hits/misses), when `FarmKnobs::solver_cache` enabled one. Both
    /// the serial and the parallel path share one cache across all of
    /// the run's classifications.
    pub cache: Option<CacheSnapshot>,
    /// The run's merged event trace, when
    /// [`PortendConfig::trace`](crate::PortendConfig::trace) enabled
    /// recording. `None` when tracing is off.
    pub trace: Option<Trace>,
    /// Counters from the static lockset/MHP pre-analysis, when
    /// [`PortendConfig::static_pass`](crate::PortendConfig::static_pass)
    /// ran it (both the serial and the parallel path). `None` when the
    /// pass is disabled.
    pub static_stats: Option<StaticStats>,
}

/// The full pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    /// Recording configuration (scheduler, detector, budgets).
    pub record: RecordConfig,
    /// Classification configuration.
    pub portend: PortendConfig,
}

impl Pipeline {
    /// Runs detection + classification on a program.
    ///
    /// `inputs` is the concrete input log, `input_spec` declares the
    /// symbolic positions for multi-path analysis, and `predicates` are
    /// the semantic properties to watch.
    ///
    /// With [`crate::FarmKnobs::cache_path`] set, the solver cache is
    /// warmed from the persistent store before classification and its
    /// hot entries are saved back afterwards, so a repeat run of the
    /// same program performs strictly fewer solves
    /// (`PipelineResult::cache` reports `warm_hits`). Verdicts are
    /// unaffected either way.
    pub fn run(
        &self,
        program: &Arc<Program>,
        inputs: Vec<i64>,
        input_spec: InputSpec,
        predicates: Vec<Predicate>,
        vm: VmConfig,
    ) -> PipelineResult {
        self.run_with_warm(
            program,
            inputs,
            input_spec,
            predicates,
            vm,
            &WarmSource::Knobs,
        )
    }

    /// [`Pipeline::run`] with an explicit [`WarmSource`] governing where
    /// the solver cache is warmed from and persisted to. `run` itself is
    /// this with [`WarmSource::Knobs`] — the knob path is one lifecycle
    /// among equals, not a special case.
    pub fn run_with_warm(
        &self,
        program: &Arc<Program>,
        inputs: Vec<i64>,
        input_spec: InputSpec,
        predicates: Vec<Predicate>,
        vm: VmConfig,
        warm: &WarmSource,
    ) -> PipelineResult {
        let recorder = self.portend.trace.as_ref().map(|_| Recorder::new());
        let main_lane = recorder.as_ref().map(|r| r.attach("main", 0));
        let (run, record_time, case) = {
            let _ev = portend_obs::span_named(EventKind::Phase, "record");
            self.record_phase(program, inputs, input_spec, predicates, vm)
        };
        // The serial path has no queue to reorder, so only the pass's
        // counters (and its trace events) are kept.
        let static_stats = self
            .portend
            .static_pass
            .then(|| static_phase(program, &run.clusters, &self.record.detector).1);
        let knobs = &self.portend.farm;
        let cache = warm.acquire(knobs);
        let portend = match &cache {
            Some(c) => Portend::with_cache(self.portend.clone(), Arc::clone(c)),
            None => Portend::new(self.portend.clone()),
        };
        let mut analyzed = Vec::with_capacity(run.clusters.len());
        {
            let _ev = portend_obs::span_named(EventKind::Phase, "classify");
            for cluster in &run.clusters {
                let t = Instant::now();
                let verdict = portend.classify(&case, &cluster.representative);
                analyzed.push(AnalyzedRace {
                    cluster: cluster.clone(),
                    verdict,
                    time: t.elapsed(),
                });
            }
        }
        warm.release(knobs, cache.as_ref());
        let mut result = PipelineResult {
            record: run,
            analyzed,
            record_time,
            case,
            cache: cache.map(|c| c.snapshot()),
            trace: None,
            static_stats,
        };
        drop(main_lane); // flush the main lane before the merge
        if let (Some(cfg), Some(recorder)) = (&self.portend.trace, &recorder) {
            finish_trace(cfg, recorder, &mut result, None);
        }
        result
    }

    /// Like [`Pipeline::run`], but classifies all detected race clusters
    /// concurrently on the [`portend_farm`] work-stealing pool, sharing
    /// one sharded solver-query cache across all jobs.
    ///
    /// With [`crate::FarmKnobs::parallel_slices`] on (the default), the
    /// farm additionally lends idle workers out at *slice* granularity:
    /// once a worker's job queue runs dry it executes slice-sized
    /// solver sub-jobs for peers still grinding through many-cold-slice
    /// feasibility queries, so the run's serial tail parallelizes too
    /// (`FarmStats::slices_offloaded` / `slice_parallel_wall_saved`).
    ///
    /// `workers` is the pool width; `0` defers to the
    /// [`crate::config::FarmKnobs`] in the configuration (whose own `0`
    /// means one worker per CPU). Verdicts are identical to the serial
    /// path: classification is a pure function of (case, cluster, config)
    /// and the cache is answer-preserving. Only `time` fields and
    /// wall-clock totals differ.
    pub fn run_parallel(
        &self,
        program: &Arc<Program>,
        inputs: Vec<i64>,
        input_spec: InputSpec,
        predicates: Vec<Predicate>,
        vm: VmConfig,
        workers: usize,
    ) -> PipelineResult {
        self.run_parallel_with_stats(program, inputs, input_spec, predicates, vm, workers)
            .0
    }

    /// [`Pipeline::run_parallel`], additionally reporting the farm's
    /// aggregate statistics (per-worker utilization, steal counts, solver
    /// cache hit rate).
    pub fn run_parallel_with_stats(
        &self,
        program: &Arc<Program>,
        inputs: Vec<i64>,
        input_spec: InputSpec,
        predicates: Vec<Predicate>,
        vm: VmConfig,
        workers: usize,
    ) -> (PipelineResult, FarmStats) {
        self.run_parallel_streamed(
            program,
            inputs,
            input_spec,
            predicates,
            vm,
            workers,
            &WarmSource::Knobs,
            &mut |_, _, _| {},
        )
    }

    /// The full-control parallel entry point: an explicit [`WarmSource`]
    /// plus a streaming `sink` invoked once per classified cluster *in
    /// completion order*, the moment the farm yields it —
    /// suspected-harmful races therefore reach the sink first, long
    /// before the run's tail finishes. `sink(seq, index, race)` gets the
    /// 0-based completion sequence, the cluster's detection-order index
    /// (its position in the final `PipelineResult::analyzed`), and the
    /// classified race.
    ///
    /// The returned result is byte-identical to
    /// [`Pipeline::run_parallel_with_stats`] (which is this with a no-op
    /// sink): streaming only observes outputs that were already flowing,
    /// and `analyzed` is restored to detection order either way.
    #[allow(clippy::too_many_arguments)]
    pub fn run_parallel_streamed(
        &self,
        program: &Arc<Program>,
        inputs: Vec<i64>,
        input_spec: InputSpec,
        predicates: Vec<Predicate>,
        vm: VmConfig,
        workers: usize,
        warm: &WarmSource,
        sink: &mut dyn FnMut(u64, usize, &AnalyzedRace),
    ) -> (PipelineResult, FarmStats) {
        let recorder = self.portend.trace.as_ref().map(|_| Recorder::new());
        let main_lane = recorder.as_ref().map(|r| r.attach("main", 0));
        let (run, record_time, case) = {
            let _ev = portend_obs::span_named(EventKind::Phase, "record");
            self.record_phase(program, inputs, input_spec, predicates, vm)
        };
        let case = Arc::new(case);
        let knobs = &self.portend.farm;
        let cache = warm.acquire(knobs);
        let mut farm = Farm::new(knobs.farm_config(workers));
        if let Some(r) = &recorder {
            farm = farm.with_recorder(r.clone());
        }
        // The slice-lending pool: idle farm workers pick up slice-sized
        // solver sub-jobs from busy peers (see `FarmKnobs::parallel_slices`).
        // Pointless without the slice solver — whole queries don't split.
        let slice_pool = (knobs.parallel_slices && self.portend.slice_solver).then(|| {
            Arc::new(if knobs.adaptive_dispatch {
                SlicePool::with_adaptive_threshold(knobs.parallel_min_cold_slices)
            } else {
                SlicePool::new()
            })
        });
        // Static pre-analysis: compute per-cluster scheduling hints and
        // the pass's counters. Hints only nudge queue priorities —
        // whether a cluster is classified, and what the verdict is, is
        // untouched (pinned by `tests/static_differential.rs`).
        let (hints, static_stats) = match self
            .portend
            .static_pass
            .then(|| static_phase(program, &run.clusters, &self.record.detector))
        {
            Some((hints, stats)) => (hints, Some(stats)),
            None => (Vec::new(), None),
        };
        let jobs: Vec<JobSpec<RaceCluster>> = run
            .clusters
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let hint = hints.get(i).copied().flatten();
                JobSpec::new(i, c.clone())
                    .with_priority(static_adjusted_priority(cluster_priority(c), hint))
            })
            .collect();

        let cfg = self.portend.clone();
        let job_case = Arc::clone(&case);
        let job_cache = cache.clone();
        let job_pool = slice_pool.clone();
        let classify_phase = portend_obs::span_named(EventKind::Phase, "classify");
        let mut frun = farm.run_lending(
            jobs,
            move |_worker, cluster: RaceCluster| {
                let mut portend = match &job_cache {
                    Some(c) => Portend::with_cache(cfg.clone(), Arc::clone(c)),
                    None => Portend::new(cfg.clone()),
                };
                if let Some(pool) = &job_pool {
                    let par = ParallelSlices::new(Arc::clone(pool) as Arc<dyn SliceExecutor>)
                        .with_min_cold_slices(cfg.farm.parallel_min_cold_slices)
                        .with_batch_dispatch(cfg.farm.batch_dispatch);
                    portend = portend.with_slice_pool(par);
                }
                let verdict = portend.classify(&job_case, &cluster.representative);
                (cluster, verdict)
            },
            slice_pool.clone(),
        );
        if let Some(c) = &cache {
            frun.attach_cache(Arc::clone(c));
        }
        // Drain the run as an iterator — each output reaches the sink
        // the moment its worker finishes it — then join for the
        // aggregate stats (every output was consumed here, so join's
        // "remaining" set is empty by construction).
        let mut indexed: Vec<(usize, AnalyzedRace)> = Vec::with_capacity(run.clusters.len());
        for (seq, out) in (&mut frun).enumerate() {
            let (cluster, verdict) = out.result;
            let race = AnalyzedRace {
                cluster,
                verdict,
                time: out.time,
            };
            sink(seq as u64, out.index, &race);
            indexed.push((out.index, race));
        }
        let (leftover, mut stats) = frun.join();
        debug_assert!(leftover.is_empty(), "iteration consumed every output");
        drop(classify_phase);

        // Restore detection order for the result (the sink saw
        // completion order).
        indexed.sort_by_key(|(i, _)| *i);
        let analyzed: Vec<AnalyzedRace> = indexed.into_iter().map(|(_, r)| r).collect();
        // Roll the per-classification fork-cost counters up into the
        // farm aggregate (the generic pool cannot see inside verdicts).
        for a in &analyzed {
            if let Ok(v) = &a.verdict {
                stats.fork_bytes_copied += v.stats.bytes_copied_on_fork;
                stats.fork_bytes_shared += v.stats.bytes_shared_on_fork;
                stats.fork_slices_reused += v.stats.slices_reused_at_fork;
            }
        }
        // Slice-lending counters come from the pool itself, not the
        // verdicts: whether a slice was offloaded is a scheduling fact
        // of this run, deliberately kept out of the (deterministic,
        // serial-identical) per-verdict work counters.
        if let Some(pool) = &slice_pool {
            stats.slices_offloaded = pool.executed();
            stats.slice_parallel_wall_saved = pool.wall_saved();
            stats.dispatch = Some(pool.dispatch_snapshot());
        }
        stats.single_flight = cache.as_ref().and_then(|c| c.single_flight_snapshot());
        stats.static_pass = static_stats;
        warm.release(knobs, cache.as_ref());
        let case = Arc::try_unwrap(case).unwrap_or_else(|arc| arc.as_ref().clone());
        let mut result = PipelineResult {
            record: run,
            analyzed,
            record_time,
            case,
            cache: cache.map(|c| c.snapshot()),
            trace: None,
            static_stats,
        };
        drop(main_lane); // flush the main lane before the merge
        if let (Some(cfg), Some(recorder)) = (&self.portend.trace, &recorder) {
            finish_trace(cfg, recorder, &mut result, Some(&stats));
        }
        (result, stats)
    }

    /// The shared prologue of [`Pipeline::run`] and
    /// [`Pipeline::run_parallel`]: record once under the detector and
    /// assemble the analysis case. Keeping this in one place is part of
    /// the serial/parallel verdict-equivalence contract — both paths
    /// classify against byte-identical inputs.
    fn record_phase(
        &self,
        program: &Arc<Program>,
        inputs: Vec<i64>,
        input_spec: InputSpec,
        predicates: Vec<Predicate>,
        vm: VmConfig,
    ) -> (RecordedRun, Duration, AnalysisCase) {
        let t0 = Instant::now();
        let rec_cfg = RecordConfig {
            vm,
            ..self.record.clone()
        };
        let run = record(program, inputs, rec_cfg);
        let record_time = t0.elapsed();
        let case = AnalysisCase {
            program: Arc::clone(program),
            trace: run.trace.clone(),
            input_spec,
            predicates,
            vm,
        };
        (run, record_time, case)
    }

    /// Convenience: run with a specific recording scheduler.
    pub fn with_record_scheduler(mut self, sched: Scheduler) -> Self {
        self.record.scheduler = sched;
        self
    }

    /// Convenience: run with a specific detector configuration.
    pub fn with_detector(mut self, det: DetectorConfig) -> Self {
        self.record.detector = det;
        self
    }
}
