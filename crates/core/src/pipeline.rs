//! The end-to-end pipeline: run the program under the race detector,
//! cluster the reports, classify every cluster (paper Fig. 2).

use std::sync::Arc;
use std::time::{Duration, Instant};

use portend_race::{DetectorConfig, RaceCluster};
use portend_replay::{record, RecordConfig, RecordedRun};
use portend_vm::{InputSpec, Program, Scheduler, VmConfig};

use crate::case::{AnalysisCase, Predicate};
use crate::classify::{ClassifyError, Portend};
use crate::config::PortendConfig;
use crate::taxonomy::Verdict;

/// One classified race: the cluster, the verdict (or failure), and how
/// long classification took (feeds Table 4 and Fig. 9).
#[derive(Debug, Clone)]
pub struct AnalyzedRace {
    /// The race cluster (representative + instance count).
    pub cluster: RaceCluster,
    /// Portend's verdict.
    pub verdict: Result<Verdict, ClassifyError>,
    /// Wall-clock classification time for this race.
    pub time: Duration,
}

/// The result of one full detect-and-classify pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The recording run (trace, all race instances, output).
    pub record: RecordedRun,
    /// One entry per distinct race, in detection order.
    pub analyzed: Vec<AnalyzedRace>,
    /// Wall-clock time of the recording phase.
    pub record_time: Duration,
    /// The analysis case shared by all classifications (program, trace,
    /// symbolic inputs, predicates).
    pub case: AnalysisCase,
}

/// The full pipeline configuration.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Recording configuration (scheduler, detector, budgets).
    pub record: RecordConfig,
    /// Classification configuration.
    pub portend: PortendConfig,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline { record: RecordConfig::default(), portend: PortendConfig::default() }
    }
}

impl Pipeline {
    /// Runs detection + classification on a program.
    ///
    /// `inputs` is the concrete input log, `input_spec` declares the
    /// symbolic positions for multi-path analysis, and `predicates` are
    /// the semantic properties to watch.
    pub fn run(
        &self,
        program: &Arc<Program>,
        inputs: Vec<i64>,
        input_spec: InputSpec,
        predicates: Vec<Predicate>,
        vm: VmConfig,
    ) -> PipelineResult {
        let t0 = Instant::now();
        let rec_cfg = RecordConfig { vm, ..self.record.clone() };
        let run = record(program, inputs, rec_cfg);
        let record_time = t0.elapsed();

        let case = AnalysisCase {
            program: Arc::clone(program),
            trace: run.trace.clone(),
            input_spec,
            predicates,
            vm,
        };
        let portend = Portend::new(self.portend.clone());
        let mut analyzed = Vec::with_capacity(run.clusters.len());
        for cluster in &run.clusters {
            let t = Instant::now();
            let verdict = portend.classify(&case, &cluster.representative);
            analyzed.push(AnalyzedRace {
                cluster: cluster.clone(),
                verdict,
                time: t.elapsed(),
            });
        }
        PipelineResult { record: run, analyzed, record_time, case }
    }

    /// Convenience: run with a specific recording scheduler.
    pub fn with_record_scheduler(mut self, sched: Scheduler) -> Self {
        self.record.scheduler = sched;
        self
    }

    /// Convenience: run with a specific detector configuration.
    pub fn with_detector(mut self, det: DetectorConfig) -> Self {
        self.record.detector = det;
        self
    }
}
