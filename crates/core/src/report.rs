//! The debugging-aid report (paper §3.6, Fig. 6).

use portend_race::RaceReport;

use crate::case::AnalysisCase;
use crate::taxonomy::{Verdict, VerdictDetail};

/// Renders a human-readable report for a classified race, in the style of
/// the paper's Fig. 6 plus the classification evidence of §3.6.
pub fn render_report(case: &AnalysisCase, race: &RaceReport, verdict: &Verdict) -> String {
    let mut out = String::new();
    let p = &case.program;
    out.push_str(&format!(
        "Data Race during access to: {}[{}]\n",
        race.alloc_name, race.offset
    ));
    out.push_str(&format!(
        "current thread id: {}: {}\n",
        race.second.tid.0,
        rw(race.second.is_write)
    ));
    out.push_str(&format!(
        "racing thread id: {}: {}\n",
        race.first.tid.0,
        rw(race.first.is_write)
    ));
    out.push_str(&format!(
        "Current thread at:\n  {}\n",
        p.loc(race.second.pc)
    ));
    out.push_str(&format!("Previous at:\n  {}\n", p.loc(race.first.pc)));
    out.push_str("size of the accessed field: 8 offset: ");
    out.push_str(&format!("{}\n", race.offset * 8));
    out.push_str(&format!("\nClassification: {}\n", verdict.class));
    match &verdict.detail {
        VerdictDetail::SpecViolation { kind, replay } => {
            out.push_str(&format!("Violation: {kind}\n"));
            out.push_str(&format!("Where: {}\n", replay.description));
            out.push_str(&format!("Reproducing inputs: {:?}\n", replay.inputs));
            out.push_str(&format!(
                "Reproducing schedule: {} decisions (replayable)\n",
                replay.schedule.len()
            ));
        }
        VerdictDetail::OutputDiff(d) => {
            out.push_str(&format!(
                "Output differs at position {}:\n  primary:   {}\n  alternate: {}\n",
                d.position, d.primary, d.alternate
            ));
            if let (Some(pf), Some(af)) = (d.primary_fd, d.alternate_fd) {
                out.push_str(&format!(
                    "Output channels differ: primary fd {pf} vs alternate fd {af}\n"
                ));
            }
            if d.primary_len != d.alternate_len {
                out.push_str(&format!(
                    "Output operation counts differ: primary {} vs alternate {}\n",
                    d.primary_len, d.alternate_len
                ));
            }
            out.push_str(&format!("Output produced at: {}\n", d.primary_loc));
            out.push_str(&format!("Inputs exposing the difference: {:?}\n", d.inputs));
        }
        VerdictDetail::KWitness => {
            out.push_str(&format!(
                "Harmless for k = {} path x schedule combinations",
                verdict.k
            ));
            if let Some(sd) = verdict.states_differ {
                out.push_str(&format!(
                    " (post-race concrete states {})",
                    if sd { "differ" } else { "same" }
                ));
            }
            out.push('\n');
        }
        VerdictDetail::AdHocSync => {
            out.push_str(
                "Only one ordering of the accesses is possible \
                 (ad-hoc synchronization).\n",
            );
        }
    }
    out
}

fn rw(is_write: bool) -> &'static str {
    if is_write {
        "WRITE"
    } else {
        "READ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::RaceClass;
    use portend_race::RaceAccess;
    use portend_replay::ExecutionTrace;
    use portend_vm::{AllocId, BlockId, FuncId, Pc, ProgramBuilder, ThreadId};
    use std::sync::Arc;

    #[test]
    fn report_contains_fig6_fields() {
        let mut pb = ProgramBuilder::new("pbzip2", "pbzip2.cpp");
        let g = pb.global("OutputBuffer", 0);
        let main = pb.func("main", |f| {
            f.line(702);
            let _ = f.load(g, portend_vm::Operand::Imm(0));
            f.ret(None);
        });
        let program = Arc::new(pb.build(main).unwrap());
        let case = AnalysisCase::concrete(program, ExecutionTrace::default());
        let pc = Pc {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        };
        let race = RaceReport {
            alloc: AllocId(0),
            alloc_name: "OutputBuffer".into(),
            offset: 0,
            first: RaceAccess {
                tid: ThreadId(0),
                pc,
                line: 389,
                is_write: true,
                step: 1,
            },
            second: RaceAccess {
                tid: ThreadId(3),
                pc,
                line: 702,
                is_write: false,
                step: 2,
            },
        };
        let verdict = Verdict {
            class: RaceClass::KWitnessHarmless,
            detail: VerdictDetail::KWitness,
            k: 10,
            states_differ: Some(false),
            stats: Default::default(),
        };
        let rep = render_report(&case, &race, &verdict);
        assert!(rep.contains("OutputBuffer"));
        assert!(rep.contains("current thread id: 3: READ"));
        assert!(rep.contains("racing thread id: 0: WRITE"));
        assert!(rep.contains("pbzip2.cpp:702"));
        assert!(rep.contains("k = 10"));
    }
}
