//! The four-category race taxonomy (paper §2.3, Fig. 1) and verdicts.

use std::fmt;

use portend_vm::{ThreadId, VmError};

/// Portend's four race categories.
///
/// The paper's Fig. 1 taxonomy: true races split into harmful
/// ("spec violated") and three progressively-weaker harmless-or-unknown
/// classes ("output differs", "k-witness harmless", "single ordering").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceClass {
    /// At least one ordering of the racing accesses violates the program's
    /// specification (crash, deadlock, infinite loop, memory error, or a
    /// user-supplied semantic predicate). Definitely harmful.
    SpecViolated,
    /// The two orderings can produce different program output; whether
    /// that matters is the developer's call, so Portend attaches evidence.
    OutputDiffers,
    /// Harmless in at least `k` explored path × schedule combinations.
    KWitnessHarmless,
    /// Only one ordering of the accesses is possible (typically ad-hoc
    /// synchronization); harmless.
    SingleOrdering,
}

impl RaceClass {
    /// The paper's short label for the category.
    pub fn label(self) -> &'static str {
        match self {
            RaceClass::SpecViolated => "specViol",
            RaceClass::OutputDiffers => "outDiff",
            RaceClass::KWitnessHarmless => "k-witness",
            RaceClass::SingleOrdering => "singleOrd",
        }
    }

    /// Whether the category is definitely harmful.
    pub fn is_harmful(self) -> bool {
        matches!(self, RaceClass::SpecViolated)
    }
}

impl fmt::Display for RaceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The kind of specification violation behind a `specViol` verdict
/// (Table 2 splits these into deadlock / crash / semantic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecViolationKind {
    /// A crash: memory error, division by zero, overflow, failed assert.
    Crash(VmError),
    /// A deadlock.
    Deadlock(VmError),
    /// An infinite loop (a loop whose exit condition can no longer
    /// change).
    InfiniteLoop {
        /// The thread diagnosed as spinning forever.
        spinning: ThreadId,
    },
    /// A user-supplied semantic predicate was violated.
    Semantic {
        /// The predicate's violation message.
        message: String,
    },
}

impl SpecViolationKind {
    /// Table 2 column for this violation.
    pub fn table2_column(&self) -> &'static str {
        match self {
            SpecViolationKind::Crash(_) => "crash",
            SpecViolationKind::Deadlock(_) => "deadlock",
            SpecViolationKind::InfiniteLoop { .. } => "hang",
            SpecViolationKind::Semantic { .. } => "semantic",
        }
    }
}

impl fmt::Display for SpecViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolationKind::Crash(e) => write!(f, "crash: {e}"),
            SpecViolationKind::Deadlock(e) => write!(f, "{e}"),
            SpecViolationKind::InfiniteLoop { spinning } => {
                write!(f, "infinite loop in {spinning}")
            }
            SpecViolationKind::Semantic { message } => write!(f, "semantic violation: {message}"),
        }
    }
}

/// Replayable evidence of a harmful consequence: the concrete inputs and
/// the thread schedule that reproduce it deterministically (paper §3:
/// "it provides the corresponding evidence in the form of program inputs
/// … and thread schedule").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayEvidence {
    /// Concrete program inputs.
    pub inputs: Vec<i64>,
    /// Scheduler decisions reproducing the consequence.
    pub schedule: Vec<ThreadId>,
    /// Human-readable description of what happens on replay.
    pub description: String,
}

/// Evidence for an "output differs" verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutputDiffEvidence {
    /// First position at which the outputs provably diverge. When one
    /// log is a strict prefix of the other, this is the prefix length —
    /// the index of the first extra output operation.
    pub position: usize,
    /// The primary's output at that position (symbolic constraint or
    /// concrete value, printed; `<missing>` past the primary's end).
    pub primary: String,
    /// The alternate's output at that position (or `<missing>`).
    pub alternate: String,
    /// The output channel the primary wrote at that position, when the
    /// divergence is (partly) a channel mismatch — the "first provable
    /// divergence" refinement also covers fd-only mismatches inside the
    /// common prefix.
    pub primary_fd: Option<i64>,
    /// The channel the alternate wrote at that position.
    pub alternate_fd: Option<i64>,
    /// Total output operations the primary performed.
    pub primary_len: usize,
    /// Total output operations the alternate performed.
    pub alternate_len: usize,
    /// Location (`file:line (function)`) where the primary emitted it.
    pub primary_loc: String,
    /// The inputs under which the difference manifests.
    pub inputs: Vec<i64>,
}

impl OutputDiffEvidence {
    /// The `(primary_fd, alternate_fd)` pair for a divergence position:
    /// populated only when both records exist and their channels differ.
    /// Shared by the concrete (`single`) and symbolic (`outcmp`)
    /// comparison paths so the fd-parity refinement cannot drift
    /// between them.
    pub(crate) fn fd_pair(
        p: Option<&portend_vm::OutputRec>,
        a: Option<&portend_vm::OutputRec>,
    ) -> (Option<i64>, Option<i64>) {
        match (p, a) {
            (Some(x), Some(y)) if x.fd != y.fd => (Some(x.fd), Some(y.fd)),
            _ => (None, None),
        }
    }
}

/// Detailed findings attached to a verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum VerdictDetail {
    /// A specification violation, with replay evidence.
    SpecViolation {
        /// What was violated.
        kind: SpecViolationKind,
        /// How to reproduce it.
        replay: ReplayEvidence,
    },
    /// An output difference, with the differing positions.
    OutputDiff(OutputDiffEvidence),
    /// Harmless for all explored combinations.
    KWitness,
    /// Alternate ordering impossible; ad-hoc synchronization suspected.
    AdHocSync,
}

/// Work counters for one classification (feeds Table 4 and Fig. 9).
///
/// `instructions` and `preemptions` are *totals across all executions*:
/// each execution segment (replay, Algorithm 1's primary/alternate runs,
/// every multi-path exploration state) contributes its own delta exactly
/// once — forked states only count what they executed after the fork.
/// The deepest single path is reported separately as
/// `max_path_instructions`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifyStats {
    /// Primary paths explored (≤ Mp).
    pub primaries: u64,
    /// Alternate executions run.
    pub alternates: u64,
    /// Preemption points encountered, summed across all executions.
    pub preemptions: u64,
    /// Branches that depended on symbolic input (Fig. 9's x-axis).
    pub dependent_branches: u64,
    /// Total VM instructions executed during classification, summed
    /// across all executions.
    pub instructions: u64,
    /// Maximum cumulative instruction count along any single explored
    /// path (exploration depth; `0` when multi-path analysis did not
    /// run).
    pub max_path_instructions: u64,
    /// Bytes the multi-path explorer's copy-on-write forks actually
    /// copied: the eager per-fork cost (thread stacks, path condition)
    /// plus every lazy first-write-after-fork copy, summed per state
    /// segment. A deep-cloning explorer would have copied
    /// `bytes_copied_on_fork + bytes_shared_on_fork`.
    pub bytes_copied_on_fork: u64,
    /// Heap and log bytes fork snapshots shared structurally instead of
    /// copying, summed over all forks.
    pub bytes_shared_on_fork: u64,
    /// Constraint slices the explorer's scoped solver reused from its
    /// memo at feasibility checks (typically a parent state's
    /// already-solved slices at a fork) instead of re-solving.
    pub slices_reused_at_fork: u64,
}

/// The result of classifying one race.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The assigned category.
    pub class: RaceClass,
    /// Detailed evidence.
    pub detail: VerdictDetail,
    /// For `KWitnessHarmless`: the number of witnessing path × schedule
    /// combinations (`k = Mp × Ma`, paper §3.4).
    pub k: u64,
    /// Whether the post-race concrete states of primary and alternate
    /// differed (Table 3's "states same / differ" columns, computed the
    /// way the Record/Replay-Analyzer baseline would).
    pub states_differ: Option<bool>,
    /// Work counters.
    pub stats: ClassifyStats,
}

impl Verdict {
    /// Shorthand constructor for a spec-violation verdict.
    pub fn spec_violation(kind: SpecViolationKind, replay: ReplayEvidence) -> Self {
        Verdict {
            class: RaceClass::SpecViolated,
            detail: VerdictDetail::SpecViolation { kind, replay },
            k: 0,
            states_differ: None,
            stats: ClassifyStats::default(),
        }
    }

    /// Shorthand constructor for a single-ordering verdict.
    pub fn single_ordering() -> Self {
        Verdict {
            class: RaceClass::SingleOrdering,
            detail: VerdictDetail::AdHocSync,
            k: 0,
            states_differ: None,
            stats: ClassifyStats::default(),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.detail {
            VerdictDetail::SpecViolation { kind, .. } => {
                write!(f, "{} ({kind})", self.class)
            }
            VerdictDetail::OutputDiff(d) => {
                write!(
                    f,
                    "{} (position {}: {} vs {})",
                    self.class, d.position, d.primary, d.alternate
                )
            }
            VerdictDetail::KWitness => write!(f, "{} (k = {})", self.class, self.k),
            VerdictDetail::AdHocSync => write!(f, "{}", self.class),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(RaceClass::SpecViolated.label(), "specViol");
        assert_eq!(RaceClass::OutputDiffers.label(), "outDiff");
        assert_eq!(RaceClass::KWitnessHarmless.label(), "k-witness");
        assert_eq!(RaceClass::SingleOrdering.label(), "singleOrd");
        assert!(RaceClass::SpecViolated.is_harmful());
        assert!(!RaceClass::SingleOrdering.is_harmful());
    }

    #[test]
    fn table2_columns() {
        let il = SpecViolationKind::InfiniteLoop {
            spinning: ThreadId(1),
        };
        assert_eq!(il.table2_column(), "hang");
        assert_eq!(
            SpecViolationKind::Semantic {
                message: "x".into()
            }
            .table2_column(),
            "semantic"
        );
    }

    #[test]
    fn verdict_display() {
        let v = Verdict::single_ordering();
        assert_eq!(v.to_string(), "singleOrd");
        let v = Verdict::spec_violation(
            SpecViolationKind::Semantic {
                message: "ts < 0".into(),
            },
            ReplayEvidence::default(),
        );
        assert!(v.to_string().contains("specViol"));
        assert!(v.to_string().contains("ts < 0"));
    }
}
