//! Chrome trace-event export: turn a merged [`Trace`] into the JSON
//! format `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load, for flame/timeline viewing of a run.
//!
//! The exporter emits the stable object form `{"traceEvents": [...]}`:
//! one `"M"` (metadata) event naming each lane, then every recorded
//! event as `"X"` (complete, spans) or `"i"` (instant). Timestamps are
//! microseconds from the recorder epoch, fractional to keep the
//! nanosecond resolution. Lane index doubles as the `tid`; the whole
//! trace is one `pid`.

use std::io::Write as _;
use std::path::Path;

use crate::json::Json;
use crate::recorder::Trace;

impl Trace {
    /// Renders the trace as Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<Json> = Vec::with_capacity(self.total_events() as usize + 8);
        for (tid, lane) in self.lanes.iter().enumerate() {
            events.push(Json::Obj(vec![
                ("ph".into(), "M".into()),
                ("name".into(), "thread_name".into()),
                ("pid".into(), Json::Int(1)),
                ("tid".into(), Json::from(tid)),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), lane.name.as_str().into())]),
                ),
            ]));
            for e in &lane.events {
                let mut fields = vec![
                    ("name".into(), e.name.into()),
                    ("cat".into(), e.kind.category().into()),
                    ("ph".into(), if e.kind.is_span() { "X" } else { "i" }.into()),
                    ("pid".into(), Json::Int(1)),
                    ("tid".into(), Json::from(tid)),
                    ("ts".into(), Json::Float(e.ts_ns as f64 / 1e3)),
                ];
                if e.kind.is_span() {
                    fields.push(("dur".into(), Json::Float(e.dur_ns as f64 / 1e3)));
                } else {
                    // Instant scope: thread-level.
                    fields.push(("s".into(), "t".into()));
                }
                fields.push((
                    "args".into(),
                    Json::Obj(vec![
                        ("a".into(), Json::from(e.a)),
                        ("b".into(), Json::from(e.b)),
                    ]),
                ));
                events.push(Json::Obj(fields));
            }
        }
        Json::Obj(vec![("traceEvents".into(), Json::Arr(events))]).render()
    }

    /// Writes [`Trace::to_chrome_json`] to `path` (atomically, by
    /// rename, so a crashed writer never leaves a half trace behind).
    pub fn write_chrome(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        write_atomic(path.as_ref(), self.to_chrome_json().as_bytes())
    }
}

/// Write-then-rename, the same discipline as the warm store's
/// `save_to`: readers only ever observe complete files.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use crate::event::EventKind;
    use crate::json;
    use crate::recorder::Recorder;
    use crate::{instant, span};

    #[test]
    fn chrome_export_is_well_formed_and_complete() {
        let rec = Recorder::new();
        {
            let _g = rec.attach("main", 0);
            let _p = span(EventKind::Phase);
            instant(EventKind::Fork, 64, 4096);
        }
        let trace = rec.finish();
        let doc = json::parse(&trace.to_chrome_json()).expect("well-formed JSON");
        let events = doc
            .get("traceEvents")
            .and_then(json::Json::as_arr)
            .expect("traceEvents array");
        // 1 metadata + 2 recorded.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").and_then(json::Json::as_str), Some("M"));
        let fork = events
            .iter()
            .find(|e| e.get("name").and_then(json::Json::as_str) == Some("fork"))
            .expect("fork event exported");
        assert_eq!(fork.get("ph").and_then(json::Json::as_str), Some("i"));
        assert_eq!(
            fork.get("args")
                .and_then(|a| a.get("a"))
                .and_then(json::Json::as_u64),
            Some(64)
        );
        let phase = events
            .iter()
            .find(|e| e.get("cat").and_then(json::Json::as_str) == Some("pipeline"))
            .expect("phase span exported");
        assert_eq!(phase.get("ph").and_then(json::Json::as_str), Some("X"));
        assert!(phase.get("dur").is_some(), "spans carry a duration");
    }

    #[test]
    fn write_chrome_lands_on_disk() {
        let rec = Recorder::new();
        {
            let _g = rec.attach("main", 0);
            instant(EventKind::Steal, 1, 0);
        }
        let dir = std::env::temp_dir().join("portend-obs-chrome-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        rec.finish().write_chrome(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(json::parse(&read).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
