//! A minimal, dependency-free JSON value tree: writer and parser.
//!
//! The container this reproduction builds in has no access to crates.io,
//! so `serde`/`serde_json` cannot be vendored; this module provides the
//! narrow surface the observability exporters need — build a [`Json`]
//! tree, render it compactly, parse it back — in the same hand-rolled
//! spirit as `portend_symex::warm`'s on-disk format and
//! `portend_bench::crit`'s criterion substitute.
//!
//! Integers are carried as `i128` so every `u64` counter round-trips
//! exactly (floats are supported for parsing generality, but the
//! exporters only ever write integers, strings, and booleans — keeping
//! the `RunReport` round-trip byte-exact is what makes reports diffable
//! across builds). Object member order is preserved on both paths, so a
//! parse → render cycle is the identity for writer-produced documents.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no decimal point or exponent in the source).
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool`, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value's elements, when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members, when it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                // JSON has no NaN/Infinity; map them to null rather
                // than emitting an unparseable document.
                if f.is_finite() {
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Conveniences for building trees without spelling the variants out.
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Int(n as i128)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Int(n as i128)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Int(n as i128)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Int(n as i128)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it was noticed
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound for the recursive-descent parser — deep enough for any
/// document our exporters produce, shallow enough that hostile input
/// cannot overflow the stack.
const MAX_DEPTH: usize = 128;

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (valid UTF-8 passes through
            // unchanged — the input is a &str).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("str input"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("str input");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("malformed integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_identity_on_writer_documents() {
        let doc = Json::Obj(vec![
            ("version".into(), Json::Int(1)),
            (
                "names".into(),
                Json::Arr(vec!["a\"b\\c".into(), "tab\there".into()]),
            ),
            ("big".into(), Json::Int(u64::MAX as i128)),
            ("neg".into(), Json::Int(-42)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
        ]);
        let rendered = doc.render();
        let parsed = parse(&rendered).expect("well-formed");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.render(), rendered, "parse∘render is the identity");
        assert_eq!(parsed.get("big").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn parses_foreign_documents() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , -3 ] , \"s\" : \"\\u00e9\\ud83d\\ude00\" } ")
            .expect("valid");
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("é😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn rejects_hostile_nesting_without_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(2.5).render(), "2.5");
    }

    #[test]
    fn accessors_are_type_strict() {
        let v = parse("{\"n\": 3}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_str), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_i64(), Some(-1));
    }
}
