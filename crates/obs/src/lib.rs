//! Observability substrate for the Portend reproduction.
//!
//! Everything the pipeline can tell you about a run flows through this
//! crate: a [`Recorder`] collects per-thread, lock-free event lanes
//! from the farm workers, the explorer, the scoped solver, the slice
//! pool, and the warm store; [`Recorder::finish`] merges them into a
//! deterministic [`Trace`]; and the exporters turn the trace into
//! Chrome trace-event JSON ([`Trace::to_chrome_json`]) or feed the
//! versioned `RunReport` assembled by the core crate.
//!
//! The crate sits at the bottom of the workspace dependency graph — it
//! depends on nothing, so every other crate can emit events. The two
//! non-negotiable properties, pinned by the workspace equivalence
//! suites:
//!
//! 1. **Recorder-off is free.** A thread that never attached pays one
//!    thread-local read and a branch per emission site — no clock read,
//!    no allocation.
//! 2. **Recorder-on changes nothing.** Emission never touches solver,
//!    cache, or verdict state; with tracing enabled every verdict and
//!    every stats byte is identical to the untraced run.
//!
//! See `DESIGN.md`'s Observability chapter for the event taxonomy and
//! the merge-determinism argument.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;

mod chrome;
mod event;
mod recorder;

pub use event::{Event, EventKind, EventSkeleton};
pub use recorder::{
    enabled, instant, span, span_named, Lane, LaneGuard, Recorder, Span, Trace, TraceConfig,
};
