//! The recorder: per-thread lock-free event buffers, lane guards, and
//! the deterministic end-of-run merge.
//!
//! ## Model
//!
//! A [`Recorder`] owns the run's clock epoch and collects *lanes* — one
//! per participating thread role ("main", "worker-00", …). A thread
//! joins by calling [`Recorder::attach`], which installs a thread-local
//! buffer; every emission ([`span`], [`instant`]) is then a plain
//! `Vec::push` into that thread-owned buffer — no locks, no atomics on
//! the hot path. When the returned [`LaneGuard`] drops (worker exit,
//! end of the serial run), the buffer is flushed into the recorder
//! under a single lock. Threads that never attached pay one
//! thread-local read and a branch per emission site and allocate
//! nothing — the recorder-off configuration is free.
//!
//! ## Determinism of the merge
//!
//! [`Recorder::finish`] orders lanes by `(sort, name)` — keys chosen by
//! the attach sites from *logical* identity (worker index, role), never
//! from thread ids or completion order — and keeps each lane's events
//! in emission order. For a deterministic execution (the serial
//! pipeline under a fixed seed), the merged sequence of
//! [`Event::skeleton`]s is therefore identical across runs; only the
//! two timestamp fields vary. The workspace `tests/run_report.rs`
//! determinism test pins exactly this.

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, EventKind, EventSkeleton};

/// What to record and where to export it — the `trace` knob carried by
/// the core `PortendConfig` (default off).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Write a Chrome trace-event JSON file (load it in
    /// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)) here
    /// after the run.
    pub chrome_path: Option<PathBuf>,
    /// Write the versioned machine-readable `RunReport` JSON here after
    /// the run.
    pub report_path: Option<PathBuf>,
    /// Free-form run label carried into the `RunReport` (workload name,
    /// build id, …).
    pub label: String,
}

impl TraceConfig {
    /// An empty configuration: events are recorded and merged, nothing
    /// is written to disk (callers can still export through the
    /// pipeline's returned handles).
    pub fn new() -> Self {
        Self::default()
    }

    /// The same configuration, also writing a Chrome trace file.
    pub fn with_chrome(mut self, path: impl Into<PathBuf>) -> Self {
        self.chrome_path = Some(path.into());
        self
    }

    /// The same configuration, also writing the `RunReport` JSON.
    pub fn with_report(mut self, path: impl Into<PathBuf>) -> Self {
        self.report_path = Some(path.into());
        self
    }

    /// The same configuration with a run label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// One thread role's flushed event buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    /// Logical lane name ("main", "worker-03", …).
    pub name: String,
    /// Merge-order key; ties break on `name`. Chosen from logical
    /// identity by the attach site, so the merge is deterministic.
    pub sort: u32,
    /// Events in emission order.
    pub events: Vec<Event>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    lanes: Mutex<Vec<Lane>>,
}

/// The per-run event recorder. Cheap to clone (an `Arc`); hand clones
/// to every component that spawns recording threads.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh recorder; its creation instant is the trace epoch.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                lanes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Attaches the calling thread to this recorder as lane
    /// `(sort, name)` and returns the guard that flushes the lane on
    /// drop. Emissions from this thread land in the lane until then.
    ///
    /// Attaching is stack-like: a nested attach (e.g. a helper
    /// borrowing a thread that already records) shadows the outer lane
    /// and restores it on drop.
    #[must_use = "dropping the guard immediately detaches the lane"]
    pub fn attach(&self, name: impl Into<String>, sort: u32) -> LaneGuard {
        let prev = LANE.with(|l| {
            l.borrow_mut().replace(ActiveLane {
                inner: Arc::clone(&self.inner),
                name: name.into(),
                sort,
                events: Vec::new(),
            })
        });
        LaneGuard { prev }
    }

    /// Drains every flushed lane and merges them deterministically:
    /// lanes ordered by `(sort, name)`, events in emission order within
    /// each lane. Lanes attached after this call go into a subsequent
    /// `finish`.
    pub fn finish(&self) -> Trace {
        let mut lanes = std::mem::take(&mut *self.inner.lanes.lock().expect("recorder poisoned"));
        lanes.sort_by(|x, y| (x.sort, &x.name).cmp(&(y.sort, &y.name)));
        Trace { lanes }
    }
}

/// The active lane: the calling thread's private buffer. Only this
/// thread touches `events` until the flush, which is what makes
/// emission lock-free.
struct ActiveLane {
    inner: Arc<Inner>,
    name: String,
    sort: u32,
    events: Vec<Event>,
}

impl ActiveLane {
    fn flush(self) {
        self.inner
            .lanes
            .lock()
            .expect("recorder poisoned")
            .push(Lane {
                name: self.name,
                sort: self.sort,
                events: self.events,
            });
    }
}

thread_local! {
    static LANE: RefCell<Option<ActiveLane>> = const { RefCell::new(None) };
}

/// Flushes the attached lane into its recorder on drop and restores
/// whatever lane the thread had before (see [`Recorder::attach`]).
#[must_use = "dropping the guard immediately detaches the lane"]
pub struct LaneGuard {
    prev: Option<ActiveLane>,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        let restored = self.prev.take();
        if let Some(lane) = LANE.with(|l| std::mem::replace(&mut *l.borrow_mut(), restored)) {
            lane.flush();
        }
    }
}

/// Whether the calling thread currently records into a lane.
///
/// Emission sites never need to call this — [`span`] and [`instant`]
/// are self-guarding — but it lets callers skip *preparing* expensive
/// arguments.
pub fn enabled() -> bool {
    LANE.with(|l| l.borrow().is_some())
}

/// Emits an instant event into the calling thread's lane; a no-op (one
/// thread-local read) when the thread is not attached.
pub fn instant(kind: EventKind, a: u64, b: u64) {
    LANE.with(|l| {
        if let Some(lane) = l.borrow_mut().as_mut() {
            let ts_ns = lane.inner.epoch.elapsed().as_nanos() as u64;
            lane.events.push(Event {
                kind,
                name: kind.label(),
                ts_ns,
                dur_ns: 0,
                a,
                b,
            });
        }
    });
}

/// Opens a span of `kind` named after the kind itself; see [`span_named`].
pub fn span(kind: EventKind) -> Span {
    span_named(kind, kind.label())
}

/// Opens a span: the returned guard emits one complete event covering
/// its own lifetime when dropped. Inert (no clock read, no allocation)
/// when the thread is not attached. Arguments can be filled in before
/// the drop with [`Span::args`].
pub fn span_named(kind: EventKind, name: &'static str) -> Span {
    Span {
        start: enabled().then(Instant::now),
        kind,
        name,
        a: 0,
        b: 0,
    }
}

/// An open span; emits its event on drop. See [`span_named`].
#[must_use = "dropping the span immediately records a zero-length event"]
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    kind: EventKind,
    name: &'static str,
    a: u64,
    b: u64,
}

impl Span {
    /// Sets the span's kind-specific arguments (often only known at the
    /// end of the measured region, e.g. a check's examined-slice count).
    pub fn args(&mut self, a: u64, b: u64) {
        self.a = a;
        self.b = b;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        LANE.with(|l| {
            if let Some(lane) = l.borrow_mut().as_mut() {
                lane.events.push(Event {
                    kind: self.kind,
                    name: self.name,
                    ts_ns: start.saturating_duration_since(lane.inner.epoch).as_nanos() as u64,
                    dur_ns: start.elapsed().as_nanos() as u64,
                    a: self.a,
                    b: self.b,
                });
            }
        });
    }
}

/// The merged result of one recorded run: every lane, deterministically
/// ordered (see [`Recorder::finish`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Lanes ordered by `(sort, name)`.
    pub lanes: Vec<Lane>,
}

impl Trace {
    /// Total events across all lanes.
    pub fn total_events(&self) -> u64 {
        self.lanes.iter().map(|l| l.events.len() as u64).sum()
    }

    /// Event counts per kind label, in [`EventKind::ALL`] order,
    /// omitting kinds that never occurred.
    pub fn counts_by_kind(&self) -> Vec<(&'static str, u64)> {
        EventKind::ALL
            .iter()
            .filter_map(|&k| {
                let n = self
                    .lanes
                    .iter()
                    .flat_map(|l| &l.events)
                    .filter(|e| e.kind == k)
                    .count() as u64;
                (n > 0).then(|| (k.label(), n))
            })
            .collect()
    }

    /// The timestamp-free view of the merged sequence: per event, the
    /// lane name plus [`Event::skeleton`]. Two identical deterministic
    /// runs produce equal skeletons — the determinism contract.
    pub fn skeleton(&self) -> Vec<(String, EventSkeleton)> {
        self.lanes
            .iter()
            .flat_map(|l| l.events.iter().map(|e| (l.name.clone(), e.skeleton())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unattached_emission_is_a_no_op() {
        assert!(!enabled());
        instant(EventKind::Fork, 1, 2);
        let mut s = span(EventKind::SolverCheck);
        s.args(3, 4);
        drop(s);
        // Nothing to observe — the point is that none of this panicked
        // or leaked into a recorder created later.
        let rec = Recorder::new();
        assert_eq!(rec.finish().total_events(), 0);
    }

    #[test]
    fn events_flush_on_guard_drop_and_merge_by_sort_key() {
        let rec = Recorder::new();
        {
            let _g = rec.attach("zeta", 5);
            instant(EventKind::Fork, 10, 20);
        }
        {
            let _g = rec.attach("alpha", 5);
            instant(EventKind::Steal, 1, 0);
            let mut s = span_named(EventKind::Phase, "record");
            s.args(7, 0);
            drop(s);
        }
        let trace = rec.finish();
        assert_eq!(trace.lanes.len(), 2);
        // Equal sort keys order by name.
        assert_eq!(trace.lanes[0].name, "alpha");
        assert_eq!(trace.lanes[1].name, "zeta");
        assert_eq!(trace.total_events(), 3);
        let skel = trace.skeleton();
        assert_eq!(skel[0].1, (EventKind::Steal, "steal", 1, 0));
        assert_eq!(skel[1].1, (EventKind::Phase, "record", 7, 0));
        assert_eq!(skel[2].1, (EventKind::Fork, "fork", 10, 20));
        assert_eq!(
            trace.counts_by_kind(),
            vec![("phase", 1), ("steal", 1), ("fork", 1)]
        );
        // Lanes were drained; a second finish is empty.
        assert_eq!(rec.finish().total_events(), 0);
    }

    #[test]
    fn nested_attach_shadows_and_restores() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _og = outer.attach("outer", 0);
        instant(EventKind::Fork, 1, 0);
        {
            let _ig = inner.attach("inner", 0);
            instant(EventKind::Fork, 2, 0);
        }
        instant(EventKind::Fork, 3, 0);
        drop(_og);
        let o = outer.finish();
        let i = inner.finish();
        assert_eq!(
            o.skeleton()
                .iter()
                .map(|(_, (_, _, a, _))| *a)
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(i.total_events(), 1);
        assert_eq!(i.lanes[0].events[0].a, 2);
    }

    #[test]
    fn spans_measure_time_and_instants_do_not() {
        let rec = Recorder::new();
        {
            let _g = rec.attach("main", 0);
            let _s = span(EventKind::SolverCheck);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let trace = rec.finish();
        let e = trace.lanes[0].events[0];
        assert!(e.dur_ns >= 1_000_000, "span measured its region: {e:?}");
        assert_eq!(e.kind, EventKind::SolverCheck);
    }

    #[test]
    fn worker_threads_record_into_their_own_lanes() {
        let rec = Recorder::new();
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    let _g = rec.attach(format!("worker-{w:02}"), 100 + w);
                    for i in 0..10 {
                        instant(EventKind::Fork, w as u64, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = rec.finish();
        assert_eq!(trace.lanes.len(), 4);
        assert_eq!(trace.total_events(), 40);
        let names: Vec<&str> = trace.lanes.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["worker-00", "worker-01", "worker-02", "worker-03"],
            "merge order comes from sort keys, not completion order"
        );
    }
}
