//! The event taxonomy: what the analysis pipeline can emit.

/// The kind of one recorded event — the complete vocabulary the
/// pipeline's layers emit. Each kind is either a *span* (has a
/// duration: phase bodies, solver checks, slice solves, worker jobs) or
/// an *instant* (a point fact: a fork, a steal, a cache probe).
///
/// The taxonomy maps onto the layers of the engine:
///
/// | kind | layer | span? | `a` | `b` |
/// |------|-------|-------|-----|-----|
/// | [`Phase`] | pipeline | yes | — | — |
/// | [`Job`] | farm worker | yes | job index | 1 if stolen |
/// | [`Steal`] | farm worker | no | job index | — |
/// | [`Lend`] | farm worker | yes | sub-jobs executed | — |
/// | [`SliceJob`] | slice pool | yes | — | — |
/// | [`SolverCheck`] | solver | yes | slices examined | nodes visited |
/// | [`SliceSolve`] | solver | yes | slice position | nodes visited |
/// | [`SliceOffload`] | solver | no | slice position | — |
/// | [`SliceDedup`] | solver | no | slice position | — |
/// | [`BatchDispatch`] | slice pool | no | batch size | — |
/// | [`CacheProbe`] | solver cache | no | 0 whole / 1 slice | 0 miss / 1 hit / 2 probation |
/// | [`Fork`] | vm | no | bytes copied | bytes shared |
/// | [`WarmLoad`] | warm store | yes | entries loaded | 1 if load succeeded |
/// | [`WarmSave`] | warm store | yes | entries written | bytes written |
/// | [`StaticPass`] | static pre-analysis | yes | candidate pairs | pruned pairs |
/// | [`StaticPrune`] | static pre-analysis | no | cluster index | 1 lock-protected / 2 not-parallel |
/// | [`RequestStart`] | serve front end | no | request id | program fingerprint |
/// | [`StoreEvict`] | store manager | no | evicted fingerprint | bytes reclaimed |
///
/// [`Phase`]: EventKind::Phase
/// [`Job`]: EventKind::Job
/// [`Steal`]: EventKind::Steal
/// [`Lend`]: EventKind::Lend
/// [`SliceJob`]: EventKind::SliceJob
/// [`SolverCheck`]: EventKind::SolverCheck
/// [`SliceSolve`]: EventKind::SliceSolve
/// [`SliceOffload`]: EventKind::SliceOffload
/// [`SliceDedup`]: EventKind::SliceDedup
/// [`BatchDispatch`]: EventKind::BatchDispatch
/// [`CacheProbe`]: EventKind::CacheProbe
/// [`Fork`]: EventKind::Fork
/// [`WarmLoad`]: EventKind::WarmLoad
/// [`WarmSave`]: EventKind::WarmSave
/// [`StaticPass`]: EventKind::StaticPass
/// [`StaticPrune`]: EventKind::StaticPrune
/// [`RequestStart`]: EventKind::RequestStart
/// [`StoreEvict`]: EventKind::StoreEvict
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A named pipeline phase (record, classify, join, …); the `name`
    /// field carries the phase name.
    Phase,
    /// One classification job executing on a farm worker.
    Job,
    /// A job was obtained by stealing from a peer's queue.
    Steal,
    /// A drained worker lending itself to the slice pool until the run
    /// closes.
    Lend,
    /// One offloaded slice sub-job executing on a lent worker.
    SliceJob,
    /// One satisfiability check (whole-query, sliced, or scoped).
    SolverCheck,
    /// One cold constraint slice actually solved.
    SliceSolve,
    /// A cold slice accepted for execution on a lent idle worker.
    SliceOffload,
    /// A cold slice answered by another solver's concurrent in-flight
    /// solve of the same canonical key (single-flight dedup).
    SliceDedup,
    /// A group of cold slices accepted by the slice pool in one
    /// dispatch unit.
    BatchDispatch,
    /// One solver-cache lookup.
    CacheProbe,
    /// One copy-on-write state fork.
    Fork,
    /// Warming the solver cache from the persistent store.
    WarmLoad,
    /// Persisting the solver cache's hot entries back to the store.
    WarmSave,
    /// The static lockset/MHP pre-analysis running over the program.
    StaticPass,
    /// One race cluster demoted because the static pre-analysis proved
    /// its representative pair ordered.
    StaticPrune,
    /// An analysis request accepted by a front end (the CLI's one-shot
    /// `analyze` or the daemon's protocol loop).
    RequestStart,
    /// The store manager evicted a per-program store to stay within its
    /// directory budget.
    StoreEvict,
}

impl EventKind {
    /// Every kind, in rendering order.
    pub const ALL: [EventKind; 18] = [
        EventKind::Phase,
        EventKind::Job,
        EventKind::Steal,
        EventKind::Lend,
        EventKind::SliceJob,
        EventKind::SolverCheck,
        EventKind::SliceSolve,
        EventKind::SliceOffload,
        EventKind::SliceDedup,
        EventKind::BatchDispatch,
        EventKind::CacheProbe,
        EventKind::Fork,
        EventKind::WarmLoad,
        EventKind::WarmSave,
        EventKind::StaticPass,
        EventKind::StaticPrune,
        EventKind::RequestStart,
        EventKind::StoreEvict,
    ];

    /// The kind's stable label (used by the exporters and the report's
    /// event summary).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Phase => "phase",
            EventKind::Job => "job",
            EventKind::Steal => "steal",
            EventKind::Lend => "lend",
            EventKind::SliceJob => "slice_job",
            EventKind::SolverCheck => "solver_check",
            EventKind::SliceSolve => "slice_solve",
            EventKind::SliceOffload => "slice_offload",
            EventKind::SliceDedup => "slice_dedup",
            EventKind::BatchDispatch => "batch_dispatch",
            EventKind::CacheProbe => "cache_probe",
            EventKind::Fork => "fork",
            EventKind::WarmLoad => "warm_load",
            EventKind::WarmSave => "warm_save",
            EventKind::StaticPass => "static_pass",
            EventKind::StaticPrune => "static_prune",
            EventKind::RequestStart => "request_start",
            EventKind::StoreEvict => "store_evict",
        }
    }

    /// The layer of the engine that emits this kind (the Chrome trace
    /// category).
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Phase => "pipeline",
            EventKind::Job
            | EventKind::Steal
            | EventKind::Lend
            | EventKind::SliceJob
            | EventKind::BatchDispatch => "farm",
            EventKind::SolverCheck
            | EventKind::SliceSolve
            | EventKind::SliceOffload
            | EventKind::SliceDedup => "solver",
            EventKind::CacheProbe => "cache",
            EventKind::Fork => "vm",
            EventKind::WarmLoad | EventKind::WarmSave | EventKind::StoreEvict => "warm",
            EventKind::StaticPass | EventKind::StaticPrune => "static",
            EventKind::RequestStart => "serve",
        }
    }

    /// Whether events of this kind carry a duration (Chrome `"X"`
    /// complete events) as opposed to being instants (`"i"`).
    pub fn is_span(self) -> bool {
        !matches!(
            self,
            EventKind::Steal
                | EventKind::SliceOffload
                | EventKind::SliceDedup
                | EventKind::BatchDispatch
                | EventKind::CacheProbe
                | EventKind::Fork
                | EventKind::StaticPrune
                | EventKind::RequestStart
                | EventKind::StoreEvict
        )
    }
}

/// One recorded event.
///
/// `ts_ns` is the start offset from the recorder's epoch; spans carry
/// their duration in `dur_ns` (instants leave it `0`). `a` and `b` are
/// the kind-specific arguments documented on [`EventKind`]. Everything
/// except the two timestamps is deterministic for a deterministic
/// execution — the property the merged-trace determinism test pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Sub-label (the phase name for [`EventKind::Phase`]; the kind's
    /// own label elsewhere).
    pub name: &'static str,
    /// Start offset from the recorder epoch, in nanoseconds.
    pub ts_ns: u64,
    /// Duration in nanoseconds; `0` for instants.
    pub dur_ns: u64,
    /// First kind-specific argument.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

/// An event's timestamp-free identity `(kind, name, a, b)` — what two
/// identical runs must agree on event-for-event.
pub type EventSkeleton = (EventKind, &'static str, u64, u64);

impl Event {
    /// The event's timestamp-free identity (see [`EventSkeleton`]).
    pub fn skeleton(&self) -> EventSkeleton {
        (self.kind, self.name, self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_cover_all() {
        let mut labels: Vec<&str> = EventKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventKind::ALL.len());
    }

    #[test]
    fn span_instant_split_matches_taxonomy() {
        assert!(EventKind::Phase.is_span());
        assert!(EventKind::SolverCheck.is_span());
        assert!(!EventKind::Fork.is_span());
        assert!(!EventKind::CacheProbe.is_span());
        assert_eq!(EventKind::Fork.category(), "vm");
        assert_eq!(EventKind::Job.category(), "farm");
        assert!(EventKind::StaticPass.is_span());
        assert!(!EventKind::StaticPrune.is_span());
        assert_eq!(EventKind::StaticPrune.category(), "static");
        assert!(!EventKind::SliceDedup.is_span());
        assert!(!EventKind::BatchDispatch.is_span());
        assert_eq!(EventKind::SliceDedup.category(), "solver");
        assert_eq!(EventKind::BatchDispatch.category(), "farm");
        assert!(!EventKind::RequestStart.is_span());
        assert!(!EventKind::StoreEvict.is_span());
        assert_eq!(EventKind::RequestStart.category(), "serve");
        assert_eq!(EventKind::StoreEvict.category(), "warm");
    }
}
