//! Runtime values: concrete 64-bit integers or symbolic expressions.

use std::fmt;

use portend_symex::{Expr, Model};

/// A runtime value.
///
/// During plain execution every value is [`Val::C`]. During multi-path
/// analysis (paper §3.3) values derived from symbolic inputs are [`Val::S`]
/// and carry the expression describing them in terms of the inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    /// A concrete value.
    C(i64),
    /// A symbolic value.
    S(Expr),
}

impl Val {
    /// The concrete value, if this value is concrete (or a symbolic
    /// expression that folded to a constant).
    pub fn as_concrete(&self) -> Option<i64> {
        match self {
            Val::C(v) => Some(*v),
            Val::S(e) => e.as_const(),
        }
    }

    /// Whether the value is symbolic (and not a folded constant).
    pub fn is_symbolic(&self) -> bool {
        self.as_concrete().is_none()
    }

    /// The value as an expression (constants become literals).
    pub fn to_expr(&self) -> Expr {
        match self {
            Val::C(v) => Expr::konst(*v),
            Val::S(e) => e.clone(),
        }
    }

    /// Evaluates the value under `model`; concrete values ignore the model.
    pub fn eval(&self, model: &Model) -> Option<i64> {
        match self {
            Val::C(v) => Some(*v),
            Val::S(e) => e.eval(model).ok(),
        }
    }

    /// Normalizes `Val::S(constant)` to `Val::C`.
    pub fn normalized(self) -> Val {
        match self.as_concrete() {
            Some(v) => Val::C(v),
            None => self,
        }
    }
}

impl Default for Val {
    fn default() -> Self {
        Val::C(0)
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::C(v)
    }
}

impl From<Expr> for Val {
    fn from(e: Expr) -> Self {
        Val::S(e).normalized()
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::C(v) => write!(f, "{v}"),
            Val::S(e) => write!(f, "sym({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portend_symex::{VarId, VarTable};

    #[test]
    fn concrete_roundtrip() {
        let v = Val::from(42);
        assert_eq!(v.as_concrete(), Some(42));
        assert!(!v.is_symbolic());
        assert_eq!(v.to_expr().as_const(), Some(42));
    }

    #[test]
    fn symbolic_value() {
        let mut t = VarTable::new();
        let x = t.fresh("x", 0, 9);
        let v = Val::S(Expr::var(x));
        assert!(v.is_symbolic());
        assert_eq!(v.as_concrete(), None);
        let mut m = Model::new();
        m.set(x, 5);
        assert_eq!(v.eval(&m), Some(5));
    }

    #[test]
    fn normalization_folds_constants() {
        let v: Val = Expr::konst(3).add(Expr::konst(4)).into();
        assert_eq!(v, Val::C(7));
        let _ = VarId(0); // silence unused import in some cfgs
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Val::default(), Val::C(0));
    }
}
