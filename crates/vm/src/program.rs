//! Programs: functions, basic blocks, static allocations, sync objects.

use std::fmt;

use crate::inst::Inst;

/// Identifier of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifier of a static allocation (a global scalar or array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(pub u32);

impl fmt::Display for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of a synchronization object (mutex, condvar, or barrier —
/// each kind has its own id space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SyncId(pub u32);

impl fmt::Display for SyncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A program counter: function, block, and instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pc {
    /// The function.
    pub func: FuncId,
    /// The block within the function.
    pub block: BlockId,
    /// The instruction index within the block.
    pub idx: u32,
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.func, self.block, self.idx)
    }
}

/// A straight-line sequence of instructions, each with a source line for
/// debug-aid reports (paper Fig. 6 prints `file:line` locations).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasicBlock {
    /// The instructions.
    pub insts: Vec<Inst>,
    /// Source line of each instruction (parallel to `insts`).
    pub lines: Vec<u32>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A function: named basic blocks plus a register-file size.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (used in stack traces).
    pub name: String,
    /// The function's basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Number of virtual registers the function uses.
    pub num_regs: u32,
}

impl Function {
    /// Total instruction count across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }
}

/// A static allocation: a named global scalar (`len == 1`) or array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSpec {
    /// The allocation's name (used in race reports).
    pub name: String,
    /// Number of 64-bit cells.
    pub len: usize,
    /// Initial values; shorter than `len` is zero-extended.
    pub init: Vec<i64>,
}

/// A barrier declaration: the number of threads that must arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierSpec {
    /// The barrier's name.
    pub name: String,
    /// Party size: how many threads must arrive to release the barrier.
    pub party: u32,
}

/// An executable program. Construct with [`crate::ProgramBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (e.g. `"pbzip2"`).
    pub name: String,
    /// Pretend source file name used in reports (e.g. `"pbzip2.cpp"`).
    pub source_name: String,
    /// All functions; `FuncId` indexes here.
    pub funcs: Vec<Function>,
    /// All static allocations; `AllocId` indexes here.
    pub allocs: Vec<AllocSpec>,
    /// Mutex names; `SyncId` (mutex space) indexes here.
    pub mutexes: Vec<String>,
    /// Condition-variable names; `SyncId` (cond space) indexes here.
    pub conds: Vec<String>,
    /// Barrier declarations; `SyncId` (barrier space) indexes here.
    pub barriers: Vec<BarrierSpec>,
    /// The entry function (the initial thread starts here with arg `0`).
    pub entry: FuncId,
}

impl Program {
    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// The instruction at `pc`, or `None` past the end of a block.
    pub fn inst_at(&self, pc: Pc) -> Option<&Inst> {
        self.funcs
            .get(pc.func.0 as usize)?
            .blocks
            .get(pc.block.0 as usize)?
            .insts
            .get(pc.idx as usize)
    }

    /// The source line recorded for `pc` (0 when unknown).
    pub fn line_at(&self, pc: Pc) -> u32 {
        self.funcs
            .get(pc.func.0 as usize)
            .and_then(|f| f.blocks.get(pc.block.0 as usize))
            .and_then(|b| b.lines.get(pc.idx as usize))
            .copied()
            .unwrap_or(0)
    }

    /// A `file:line (function)` location string for reports.
    pub fn loc(&self, pc: Pc) -> String {
        let func = self
            .funcs
            .get(pc.func.0 as usize)
            .map(|f| f.name.as_str())
            .unwrap_or("?");
        format!("{}:{} ({})", self.source_name, self.line_at(pc), func)
    }

    /// Total instruction count (the "size" we report in Table 1).
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }

    /// A stable content fingerprint over the whole IR: FNV-1a-64 of the
    /// program's deterministic `Debug` rendering (every function, block,
    /// instruction, allocation, and sync declaration participates).
    ///
    /// Two builds of the same program hash identically; any semantic
    /// edit — an instruction, an initial value, a barrier party size —
    /// moves the hash. The warm-store manager keys per-program solver
    /// stores on this value, so a store written for one program is
    /// rejected distinctly (never silently reused) when presented for
    /// another. `0` is reserved as the "unkeyed" wildcard, so the hash
    /// is nudged off zero in the (astronomically unlikely) collision.
    pub fn fingerprint(&self) -> u64 {
        let rendered = format!("{self:?}");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in rendered.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if h == 0 {
            1
        } else {
            h
        }
    }

    /// Validates cross-references (block targets, register ranges,
    /// allocation and sync ids). Returns a description of the first
    /// problem found; use [`Program::validate_all`] for the full list.
    pub fn validate(&self) -> Result<(), String> {
        match self.validate_all().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Exhaustive validation: collects **every** structural problem —
    /// out-of-range entry, zero-party barriers, empty functions, line
    /// table mismatches, per-instruction reference errors, and blocks
    /// missing a terminator — in program order, instead of stopping at
    /// the first. Empty means valid.
    pub fn validate_all(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if self.entry.0 as usize >= self.funcs.len() {
            errors.push(format!("entry {} out of range", self.entry));
        }
        for (bi, bar) in self.barriers.iter().enumerate() {
            // A zero-party barrier could never release anyone; every
            // wait on it would deadlock, so reject it up front.
            if bar.party == 0 {
                errors.push(format!("barrier {} ({}) has zero parties", bi, bar.name));
            }
        }
        for (fi, f) in self.funcs.iter().enumerate() {
            if f.blocks.is_empty() {
                errors.push(format!("function {} has no blocks", f.name));
            }
            for (bi, b) in f.blocks.iter().enumerate() {
                if b.insts.len() != b.lines.len() {
                    errors.push(format!("line table mismatch in {}:{bi}", f.name));
                }
                for (ii, inst) in b.insts.iter().enumerate() {
                    let at = || format!("{}:{bi}:{ii} `{inst}`", f.name);
                    if let Err(e) = self.validate_inst(inst, f, fi, &at) {
                        errors.push(e);
                    }
                }
                // Every block must end in a terminator to avoid running
                // off the end.
                match b.insts.last() {
                    Some(Inst::Jump { .. })
                    | Some(Inst::Branch { .. })
                    | Some(Inst::Ret { .. }) => {}
                    _ => errors.push(format!(
                        "block {}:{bi} does not end in jump/branch/ret",
                        f.name
                    )),
                }
            }
        }
        errors
    }

    fn validate_inst(
        &self,
        inst: &Inst,
        f: &Function,
        _fi: usize,
        at: &dyn Fn() -> String,
    ) -> Result<(), String> {
        use crate::inst::Operand;
        let check_reg = |r: u32| -> Result<(), String> {
            if r >= f.num_regs {
                Err(format!("register r{r} out of range at {}", at()))
            } else {
                Ok(())
            }
        };
        let check_op = |o: &Operand| -> Result<(), String> {
            match o {
                Operand::Reg(r) => check_reg(*r),
                Operand::Imm(_) => Ok(()),
            }
        };
        let check_block = |b: BlockId| -> Result<(), String> {
            if b.0 as usize >= f.blocks.len() {
                Err(format!("block {b} out of range at {}", at()))
            } else {
                Ok(())
            }
        };
        let check_alloc = |a: AllocId| -> Result<(), String> {
            if a.0 as usize >= self.allocs.len() {
                Err(format!("allocation {a} out of range at {}", at()))
            } else {
                Ok(())
            }
        };
        let check_func = |id: FuncId| -> Result<(), String> {
            if id.0 as usize >= self.funcs.len() {
                Err(format!("function {id} out of range at {}", at()))
            } else {
                Ok(())
            }
        };
        let check_sync = |s: SyncId, space: &[String]| -> Result<(), String> {
            if s.0 as usize >= space.len() {
                Err(format!("sync object {s} out of range at {}", at()))
            } else {
                Ok(())
            }
        };
        match inst {
            Inst::Const { dst, .. } => check_reg(*dst),
            Inst::Copy { dst, src } | Inst::Not { dst, src } => {
                check_reg(*dst)?;
                check_op(src)
            }
            Inst::Bin { dst, lhs, rhs, .. } | Inst::Cmp { dst, lhs, rhs, .. } => {
                check_reg(*dst)?;
                check_op(lhs)?;
                check_op(rhs)
            }
            Inst::Load { dst, base, index } => {
                check_reg(*dst)?;
                check_alloc(*base)?;
                check_op(index)
            }
            Inst::Store { base, index, src } => {
                check_alloc(*base)?;
                check_op(index)?;
                check_op(src)
            }
            Inst::Jump { target } => check_block(*target),
            Inst::Branch {
                cond,
                then_b,
                else_b,
            } => {
                check_op(cond)?;
                check_block(*then_b)?;
                check_block(*else_b)
            }
            Inst::Call { dst, func, args } => {
                if let Some(d) = dst {
                    check_reg(*d)?;
                }
                check_func(*func)?;
                args.iter().try_for_each(check_op)
            }
            Inst::Ret { value } => value.iter().try_for_each(check_op),
            Inst::Spawn { dst, func, arg } => {
                check_reg(*dst)?;
                check_func(*func)?;
                check_op(arg)
            }
            Inst::Join { tid } => check_op(tid),
            Inst::MutexLock { mutex } | Inst::MutexUnlock { mutex } => {
                check_sync(*mutex, &self.mutexes)
            }
            Inst::CondWait { cond, mutex } => {
                check_sync(*cond, &self.conds)?;
                check_sync(*mutex, &self.mutexes)
            }
            Inst::CondSignal { cond } | Inst::CondBroadcast { cond } => {
                check_sync(*cond, &self.conds)
            }
            Inst::BarrierWait { barrier } => {
                if barrier.0 as usize >= self.barriers.len() {
                    Err(format!("barrier {barrier} out of range at {}", at()))
                } else {
                    Ok(())
                }
            }
            Inst::Output { value, .. } => check_op(value),
            Inst::Input { dst } => check_reg(*dst),
            Inst::Assert { cond, .. } => check_op(cond),
            Inst::Free { base } => check_alloc(*base),
            Inst::Yield | Inst::Nop => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    fn tiny() -> Program {
        Program {
            name: "t".into(),
            source_name: "t.c".into(),
            funcs: vec![Function {
                name: "main".into(),
                blocks: vec![BasicBlock {
                    insts: vec![Inst::Ret { value: None }],
                    lines: vec![1],
                }],
                num_regs: 0,
            }],
            allocs: vec![],
            mutexes: vec![],
            conds: vec![],
            barriers: vec![],
            entry: FuncId(0),
        }
    }

    #[test]
    fn validate_ok() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_missing_terminator() {
        let mut p = tiny();
        p.funcs[0].blocks[0].insts = vec![Inst::Nop];
        p.funcs[0].blocks[0].lines = vec![1];
        assert!(p.validate().unwrap_err().contains("does not end"));
    }

    #[test]
    fn validate_rejects_bad_register() {
        let mut p = tiny();
        p.funcs[0].blocks[0].insts = vec![
            Inst::Copy {
                dst: 5,
                src: Operand::Imm(0),
            },
            Inst::Ret { value: None },
        ];
        p.funcs[0].blocks[0].lines = vec![1, 1];
        assert!(p.validate().unwrap_err().contains("register"));
    }

    #[test]
    fn validate_rejects_zero_party_barrier() {
        let mut p = tiny();
        p.barriers.push(BarrierSpec {
            name: "b".into(),
            party: 0,
        });
        assert!(p.validate().unwrap_err().contains("zero parties"));
        p.barriers[0].party = 2;
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_all_collects_every_error() {
        let mut p = tiny();
        p.barriers.push(BarrierSpec {
            name: "b".into(),
            party: 0,
        });
        p.funcs[0].blocks[0].insts = vec![
            Inst::Copy {
                dst: 5,
                src: Operand::Imm(0),
            },
            Inst::Nop,
        ];
        p.funcs[0].blocks[0].lines = vec![1, 1];
        let errors = p.validate_all();
        assert_eq!(errors.len(), 3, "errors: {errors:?}");
        assert!(errors.iter().any(|e| e.contains("zero parties")));
        assert!(errors.iter().any(|e| e.contains("register")));
        assert!(errors.iter().any(|e| e.contains("does not end")));
        // `validate` reports the first of the same list.
        assert_eq!(p.validate().unwrap_err(), errors[0]);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let p = tiny();
        assert_eq!(p.fingerprint(), tiny().fingerprint(), "deterministic");
        assert_ne!(p.fingerprint(), 0, "zero is the unkeyed wildcard");
        // Any semantic edit moves the hash: an instruction, a name, an
        // allocation's initial value.
        let mut edited = tiny();
        edited.funcs[0].blocks[0].insts = vec![Inst::Nop, Inst::Ret { value: None }];
        edited.funcs[0].blocks[0].lines = vec![1, 1];
        assert_ne!(edited.fingerprint(), p.fingerprint());
        let mut renamed = tiny();
        renamed.allocs.push(AllocSpec {
            name: "g".into(),
            len: 1,
            init: vec![7],
        });
        assert_ne!(renamed.fingerprint(), p.fingerprint());
    }

    #[test]
    fn pc_display_and_loc() {
        let p = tiny();
        let pc = Pc {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        };
        assert_eq!(pc.to_string(), "f0:b0:0");
        assert_eq!(p.line_at(pc), 1);
        assert!(p.loc(pc).contains("t.c:1"));
        assert_eq!(p.inst_count(), 1);
    }
}
