//! The executor: scheduling loop, watchpoints, suspension, budgets.
//!
//! [`drive`] runs a [`Machine`] under a [`Scheduler`] until it completes,
//! crashes, deadlocks, exhausts its step budget, hits a watched memory
//! access, or reaches a symbolic fork the caller must resolve. It is the
//! single scheduling loop shared by plain execution, recording, replay,
//! single-pre/single-post classification, and multi-path exploration —
//! which is what keeps schedule decision points aligned across all of them.

use std::collections::BTreeSet;

use portend_symex::Expr;

use crate::error::VmError;
use crate::machine::{Machine, StepEvent};
use crate::monitor::Monitor;
use crate::program::{AllocId, BlockId, Pc};
use crate::sched::{PickReason, Scheduler};
use crate::thread::ThreadId;

/// A watched memory location; hitting it returns control to the caller
/// *before* the access executes (this is how the classifier checkpoints
/// "just before the first racing access", paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watch {
    /// The watched allocation.
    pub alloc: AllocId,
    /// Specific offset, or `None` for the whole allocation.
    pub offset: Option<i64>,
    /// Restrict to one thread, or `None` for any.
    pub tid: Option<ThreadId>,
    /// Only trigger on writes.
    pub writes_only: bool,
}

impl Watch {
    /// Watch every access to an allocation.
    pub fn alloc(alloc: AllocId) -> Self {
        Watch {
            alloc,
            offset: None,
            tid: None,
            writes_only: false,
        }
    }

    /// Watch accesses to one cell.
    pub fn cell(alloc: AllocId, offset: i64) -> Self {
        Watch {
            alloc,
            offset: Some(offset),
            tid: None,
            writes_only: false,
        }
    }

    /// Restrict the watch to one thread.
    pub fn by(mut self, tid: ThreadId) -> Self {
        self.tid = Some(tid);
        self
    }
}

/// A watch hit: the current thread is *about to* perform this access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchHit {
    /// The accessing thread.
    pub tid: ThreadId,
    /// The pc of the pending access.
    pub pc: Pc,
    /// The accessed allocation.
    pub alloc: AllocId,
    /// The resolved offset.
    pub offset: i64,
    /// Whether the pending access is a write.
    pub is_write: bool,
}

/// Execution budget and controls for one [`drive`] call.
#[derive(Debug, Clone)]
pub struct DriveCfg {
    /// Maximum instructions to execute in this call.
    pub max_steps: u64,
    /// Watched locations.
    pub watches: Vec<Watch>,
    /// Locations whose accesses become scheduler *preemption points*
    /// instead of stopping execution (paper §6: a detected racing access is
    /// considered a possible preemption point). Used during post-race
    /// schedule diversification.
    pub preempt_watches: Vec<Watch>,
    /// Threads excluded from scheduling (used to enforce the alternate
    /// ordering of racing accesses, paper §3.2).
    pub suspended: BTreeSet<ThreadId>,
    /// Record scheduler decisions into `machine.sched_log`.
    pub record_schedule: bool,
}

impl Default for DriveCfg {
    fn default() -> Self {
        DriveCfg {
            max_steps: 1_000_000,
            watches: Vec::new(),
            preempt_watches: Vec::new(),
            suspended: BTreeSet::new(),
            record_schedule: false,
        }
    }
}

impl DriveCfg {
    /// A config with only a step budget.
    pub fn with_budget(max_steps: u64) -> Self {
        DriveCfg {
            max_steps,
            ..Default::default()
        }
    }
}

/// Why [`drive`] returned.
#[derive(Debug, Clone, PartialEq)]
pub enum DriveStop {
    /// Every thread exited.
    Completed,
    /// Execution crashed or deadlocked.
    Error(VmError),
    /// The step budget was exhausted (the classifier's "timeout").
    StepLimit,
    /// No thread is schedulable, but only because of suspensions — not a
    /// true deadlock. The classifier's alternate-enforcement probes this.
    Stuck,
    /// A watched access is pending (not yet executed).
    WatchHit(WatchHit),
    /// A branch on a symbolic condition needs the caller to fork
    /// (resolve with [`Machine::apply_branch`]).
    SymBranch {
        /// The symbolic condition.
        cond: Expr,
        /// Target when non-zero.
        then_b: BlockId,
        /// Target when zero.
        else_b: BlockId,
    },
    /// A symbolic assertion needs the caller to fork
    /// (resolve with [`Machine::apply_assert`]).
    SymAssert {
        /// The symbolic condition.
        cond: Expr,
        /// The assertion message.
        msg: String,
    },
}

impl DriveStop {
    /// Whether the stop is a crash or deadlock.
    pub fn is_error(&self) -> bool {
        matches!(self, DriveStop::Error(_))
    }
}

fn watch_match(m: &Machine, watches: &[Watch]) -> Option<WatchHit> {
    if watches.is_empty() {
        return None;
    }
    let (alloc, offset, is_write) = m.peek_access()?;
    let offset = offset?;
    let tid = m.cur;
    for w in watches {
        if w.alloc != alloc {
            continue;
        }
        if let Some(o) = w.offset {
            if o != offset {
                continue;
            }
        }
        if let Some(t) = w.tid {
            if t != tid {
                continue;
            }
        }
        if w.writes_only && !is_write {
            continue;
        }
        let pc = m.thread(tid).pc().expect("runnable thread has a pc");
        return Some(WatchHit {
            tid,
            pc,
            alloc,
            offset,
            is_write,
        });
    }
    None
}

/// Runs the machine until one of the [`DriveStop`] conditions.
///
/// The scheduling contract: the scheduler is consulted when (a) execution
/// starts or the current thread blocked/exited, or (b) the current thread
/// is about to execute a preemption-point instruction. Watch hits return
/// to the caller *without* consulting the scheduler, so recorded schedule
/// traces stay aligned between runs with and without watchpoints.
pub fn drive(
    m: &mut Machine,
    sched: &mut Scheduler,
    mon: &mut dyn Monitor,
    cfg: &DriveCfg,
) -> DriveStop {
    let mut local_steps: u64 = 0;
    let mut just_picked = false;
    loop {
        if m.all_finished() {
            return DriveStop::Completed;
        }
        let runnable = m.runnable_threads(&cfg.suspended);
        if runnable.is_empty() {
            let any_suspended_alive = cfg.suspended.iter().any(|t| !m.thread(*t).is_finished());
            if any_suspended_alive {
                return DriveStop::Stuck;
            }
            return DriveStop::Error(VmError::Deadlock(m.deadlock_info()));
        }

        let cur_ok = runnable.contains(&m.cur);
        let at_preempt = cur_ok
            && (m
                .peek_inst()
                .map(|i| i.is_preemption_point())
                .unwrap_or(false)
                || watch_match(m, &cfg.preempt_watches).is_some());
        if !cur_ok || (at_preempt && !just_picked) {
            let reason = if cur_ok {
                PickReason::Preemption
            } else {
                PickReason::Blocked
            };
            let alive = m.runnable_threads(&BTreeSet::new());
            let t = sched.pick(&runnable, &alive, m.cur, reason);
            m.preemptions += 1;
            if cfg.record_schedule {
                m.sched_log.push(t);
            }
            m.cur = t;
            just_picked = true;
            continue;
        }

        if let Some(hit) = watch_match(m, &cfg.watches) {
            return DriveStop::WatchHit(hit);
        }

        if local_steps >= cfg.max_steps {
            return DriveStop::StepLimit;
        }
        local_steps += 1;
        just_picked = false;

        match m.step(mon) {
            StepEvent::Ran | StepEvent::Blocked | StepEvent::Exited => {}
            StepEvent::SymBranch {
                cond,
                then_b,
                else_b,
            } => {
                return DriveStop::SymBranch {
                    cond,
                    then_b,
                    else_b,
                }
            }
            StepEvent::SymAssert { cond, msg } => return DriveStop::SymAssert { cond, msg },
            StepEvent::Err(e) => return DriveStop::Error(e),
        }
    }
}

/// Convenience: run a fresh machine to completion under a scheduler,
/// with a step budget. Returns the final stop.
pub fn run_to_completion(
    m: &mut Machine,
    sched: &mut Scheduler,
    mon: &mut dyn Monitor,
    max_steps: u64,
) -> DriveStop {
    drive(m, sched, mon, &DriveCfg::with_budget(max_steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::config::VmConfig;
    use crate::inst::Operand;
    use crate::io::{InputMode, InputSource, InputSpec};
    use crate::monitor::{NullMonitor, RecordingMonitor};
    use std::sync::Arc;

    fn boot(p: crate::program::Program, inputs: Vec<i64>) -> Machine {
        Machine::new(
            Arc::new(p),
            InputSource::new(InputSpec::concrete(inputs), InputMode::Concrete),
            VmConfig::default(),
        )
    }

    /// Two threads racing on a counter; main joins both.
    fn racy_counter_program() -> crate::program::Program {
        let mut pb = ProgramBuilder::new("racy", "racy.c");
        let g = pb.global("counter", 0);
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.racy_inc(g, Operand::Imm(0));
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t1 = f.spawn(worker, Operand::Imm(0));
            let t2 = f.spawn(worker, Operand::Imm(1));
            f.join(t1);
            f.join(t2);
            let v = f.load(g, Operand::Imm(0));
            f.output(1, v);
            f.ret(None);
        });
        pb.build(main).unwrap()
    }

    #[test]
    fn cooperative_run_completes() {
        let mut m = boot(racy_counter_program(), vec![]);
        let mut s = Scheduler::Cooperative;
        let mut mon = NullMonitor;
        let stop = run_to_completion(&mut m, &mut s, &mut mon, 100_000);
        assert_eq!(stop, DriveStop::Completed);
        assert_eq!(m.output.concrete_values(), Some(vec![2]));
    }

    #[test]
    fn deadlock_detected() {
        let mut pb = ProgramBuilder::new("dl", "dl.c");
        let a = pb.mutex("A");
        let b = pb.mutex("B");
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.lock(b);
            f.yield_();
            f.lock(a);
            f.unlock(a);
            f.unlock(b);
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            f.lock(a);
            f.yield_();
            f.lock(b);
            f.unlock(b);
            f.unlock(a);
            f.join(t);
            f.ret(None);
        });
        let mut m = boot(pb.build(main).unwrap(), vec![]);
        // Round-robin interleaves the two lock acquisitions.
        let mut s = Scheduler::RoundRobin;
        let mut mon = NullMonitor;
        let stop = run_to_completion(&mut m, &mut s, &mut mon, 100_000);
        match stop {
            DriveStop::Error(VmError::Deadlock(info)) => {
                assert_eq!(info.edges.len(), 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn watchpoint_stops_before_access() {
        let mut pb = ProgramBuilder::new("w", "w.c");
        let g = pb.global("g", 5);
        let main = pb.func("main", |f| {
            let v = f.load(g, Operand::Imm(0));
            f.output(1, v);
            f.ret(None);
        });
        let mut m = boot(pb.build(main).unwrap(), vec![]);
        let mut s = Scheduler::Cooperative;
        let mut mon = NullMonitor;
        let cfg = DriveCfg {
            watches: vec![Watch::cell(crate::program::AllocId(0), 0)],
            ..Default::default()
        };
        let stop = drive(&mut m, &mut s, &mut mon, &cfg);
        match stop {
            DriveStop::WatchHit(hit) => {
                assert!(!hit.is_write);
                assert_eq!(hit.offset, 0);
                // The access has not executed: no output yet.
                assert!(m.output.is_empty());
            }
            other => panic!("expected watch hit, got {other:?}"),
        }
        // Step over the access, then the program completes.
        let ev = m.step(&mut mon);
        assert_eq!(ev, StepEvent::Ran);
        let stop = drive(&mut m, &mut s, &mut mon, &cfg);
        assert_eq!(stop, DriveStop::Completed);
        assert_eq!(m.output.concrete_values(), Some(vec![5]));
    }

    #[test]
    fn suspension_makes_execution_stuck_not_deadlocked() {
        let mut m = boot(racy_counter_program(), vec![]);
        let mut s = Scheduler::Cooperative;
        let mut mon = NullMonitor;
        let mut cfg = DriveCfg::default();
        // Suspend the main thread immediately: nothing else exists yet.
        cfg.suspended.insert(ThreadId(0));
        let stop = drive(&mut m, &mut s, &mut mon, &cfg);
        assert_eq!(stop, DriveStop::Stuck);
    }

    #[test]
    fn schedule_recording_and_exact_replay() {
        let mut m1 = boot(racy_counter_program(), vec![]);
        let mut s1 = Scheduler::random(7);
        let mut mon1 = RecordingMonitor::default();
        let cfg = DriveCfg {
            record_schedule: true,
            ..Default::default()
        };
        let stop = drive(&mut m1, &mut s1, &mut mon1, &cfg);
        assert_eq!(stop, DriveStop::Completed);
        let trace = m1.sched_log.to_vec();
        assert!(!trace.is_empty());

        // Replaying the recorded decisions reproduces the exact access
        // interleaving.
        let mut m2 = boot(racy_counter_program(), vec![]);
        let mut s2 = Scheduler::follow(trace);
        let mut mon2 = RecordingMonitor::default();
        let stop = drive(&mut m2, &mut s2, &mut mon2, &DriveCfg::default());
        assert_eq!(stop, DriveStop::Completed);
        assert!(!s2.diverged());
        let seq1: Vec<_> = mon1
            .accesses
            .iter()
            .map(|a| (a.tid, a.pc, a.is_write))
            .collect();
        let seq2: Vec<_> = mon2
            .accesses
            .iter()
            .map(|a| (a.tid, a.pc, a.is_write))
            .collect();
        assert_eq!(seq1, seq2);
        assert_eq!(m1.output, m2.output);
    }

    #[test]
    fn step_limit_on_spin_loop() {
        let mut pb = ProgramBuilder::new("spin", "spin.c");
        let g = pb.global("flag", 0);
        let main = pb.func("main", |f| {
            f.spin_while_eq(g, Operand::Imm(0), 0);
            f.ret(None);
        });
        let mut m = boot(pb.build(main).unwrap(), vec![]);
        let mut s = Scheduler::Cooperative;
        let mut mon = NullMonitor;
        let stop = run_to_completion(&mut m, &mut s, &mut mon, 1000);
        assert_eq!(stop, DriveStop::StepLimit);
    }

    #[test]
    fn condvar_handoff() {
        let mut pb = ProgramBuilder::new("cv", "cv.c");
        let g = pb.global("ready", 0);
        let mu = pb.mutex("m");
        let cv = pb.condvar("c");
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.lock(mu);
            f.store(g, Operand::Imm(0), Operand::Imm(1));
            f.cond_signal(cv);
            f.unlock(mu);
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            f.lock(mu);
            f.while_loop(
                |f| {
                    let v = f.load(g, Operand::Imm(0));
                    f.cmp(portend_symex::CmpOp::Eq, v, Operand::Imm(0))
                },
                |f| {
                    f.cond_wait(cv, mu);
                },
            );
            f.unlock(mu);
            f.join(t);
            f.output(1, Operand::Imm(99));
            f.ret(None);
        });
        let p = pb.build(main).unwrap();
        for seed in 0..8 {
            let mut m = boot(p.clone(), vec![]);
            let mut s = Scheduler::random(seed);
            let mut mon = NullMonitor;
            let stop = run_to_completion(&mut m, &mut s, &mut mon, 100_000);
            assert_eq!(stop, DriveStop::Completed, "seed {seed}");
            assert_eq!(m.output.concrete_values(), Some(vec![99]));
        }
    }

    #[test]
    fn barrier_releases_full_party() {
        let mut pb = ProgramBuilder::new("bar", "bar.c");
        let bar = pb.barrier("b", 3);
        let g = pb.global("done", 0);
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.barrier_wait(bar);
            f.racy_inc(g, Operand::Imm(0));
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t1 = f.spawn(worker, Operand::Imm(0));
            let t2 = f.spawn(worker, Operand::Imm(1));
            f.barrier_wait(bar);
            f.join(t1);
            f.join(t2);
            let v = f.load(g, Operand::Imm(0));
            f.output(1, v);
            f.ret(None);
        });
        let p = pb.build(main).unwrap();
        for seed in 0..8 {
            let mut m = boot(p.clone(), vec![]);
            let mut s = Scheduler::random(seed);
            let mut mon = NullMonitor;
            let stop = run_to_completion(&mut m, &mut s, &mut mon, 100_000);
            assert_eq!(stop, DriveStop::Completed, "seed {seed}");
            assert_eq!(m.output.concrete_values(), Some(vec![2]));
        }
    }
}
