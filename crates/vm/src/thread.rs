//! Threads and stack frames.

use std::fmt;

use crate::inst::Reg;
use crate::program::{BlockId, FuncId, Pc, Program, SyncId};
use crate::value::Val;

/// A thread identifier (index into the machine's thread table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Why a thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Ready to execute.
    Runnable,
    /// Waiting to acquire a mutex.
    BlockedMutex(SyncId),
    /// Waiting on a condition variable.
    BlockedCond(SyncId),
    /// Waiting for another thread to exit.
    BlockedJoin(ThreadId),
    /// Waiting at a barrier.
    BlockedBarrier(SyncId),
    /// The thread has exited.
    Finished,
}

impl ThreadState {
    /// Human-readable description of the blocking resource, for deadlock
    /// reports.
    pub fn resource(&self) -> Option<String> {
        match self {
            ThreadState::BlockedMutex(m) => Some(format!("mutex {m}")),
            ThreadState::BlockedCond(c) => Some(format!("condvar {c}")),
            ThreadState::BlockedJoin(t) => Some(format!("join {t}")),
            ThreadState::BlockedBarrier(b) => Some(format!("barrier {b}")),
            ThreadState::Runnable | ThreadState::Finished => None,
        }
    }
}

/// A resume obligation carried across a blocking instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumePhase {
    /// No obligation.
    None,
    /// Woken from a condition wait; must re-acquire the mutex before the
    /// `CondWait` instruction completes.
    CondReacquire(SyncId),
    /// Released from a barrier; the pending `BarrierWait` completes
    /// without re-arriving.
    BarrierDone,
}

/// One stack frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// Current basic block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub idx: u32,
    /// The register file.
    pub regs: Vec<Val>,
    /// Caller register receiving this frame's return value.
    pub ret_to: Option<Reg>,
}

impl Frame {
    /// Creates a frame at the entry of `func` with the given arguments in
    /// `r0..`.
    pub fn new(program: &Program, func: FuncId, args: &[Val], ret_to: Option<Reg>) -> Self {
        let num_regs = program.func(func).num_regs as usize;
        let mut regs = vec![Val::C(0); num_regs];
        for (i, a) in args.iter().enumerate().take(num_regs) {
            regs[i] = a.clone();
        }
        Frame {
            func,
            block: BlockId(0),
            idx: 0,
            regs,
            ret_to,
        }
    }

    /// The frame's current program counter.
    pub fn pc(&self) -> Pc {
        Pc {
            func: self.func,
            block: self.block,
            idx: self.idx,
        }
    }
}

/// One thread of execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Thread {
    /// The thread's id.
    pub id: ThreadId,
    /// The call stack; empty only when finished.
    pub frames: Vec<Frame>,
    /// Scheduling state.
    pub state: ThreadState,
    /// Pending resume obligation.
    pub phase: ResumePhase,
    /// Instructions executed by this thread.
    pub steps: u64,
}

impl Thread {
    /// Creates a runnable thread with a single frame.
    pub fn new(id: ThreadId, frame: Frame) -> Self {
        Thread {
            id,
            frames: vec![frame],
            state: ThreadState::Runnable,
            phase: ResumePhase::None,
            steps: 0,
        }
    }

    /// Whether the thread can be scheduled.
    pub fn is_runnable(&self) -> bool {
        self.state == ThreadState::Runnable
    }

    /// Whether the thread has exited.
    pub fn is_finished(&self) -> bool {
        self.state == ThreadState::Finished
    }

    /// The innermost frame.
    ///
    /// # Panics
    ///
    /// Panics on a finished thread (no frames).
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("live thread has a frame")
    }

    /// Mutable access to the innermost frame.
    ///
    /// # Panics
    ///
    /// Panics on a finished thread (no frames).
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("live thread has a frame")
    }

    /// The thread's current pc, or `None` when finished.
    pub fn pc(&self) -> Option<Pc> {
        self.frames.last().map(Frame::pc)
    }

    /// A stack trace as `(function id, pc)` pairs, innermost last.
    pub fn stack(&self) -> Vec<Pc> {
        self.frames.iter().map(Frame::pc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn frame_initializes_args() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let f = pb.func("f", |fb| {
            let a = fb.param();
            let b = fb.param();
            let s = fb.add(a, b);
            fb.ret(Some(s));
        });
        let p = pb.build(f).expect("valid");
        let fr = Frame::new(&p, f, &[Val::C(3), Val::C(4)], None);
        assert_eq!(fr.regs[0], Val::C(3));
        assert_eq!(fr.regs[1], Val::C(4));
        assert_eq!(fr.pc().to_string(), "f0:b0:0");
    }

    #[test]
    fn thread_state_resources() {
        assert_eq!(
            ThreadState::BlockedMutex(SyncId(1)).resource(),
            Some("mutex s1".to_string())
        );
        assert_eq!(ThreadState::Runnable.resource(), None);
    }

    #[test]
    fn thread_stack_trace() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let f = pb.func("f", |fb| fb.ret(None));
        let p = pb.build(f).expect("valid");
        let t = Thread::new(ThreadId(0), Frame::new(&p, f, &[], None));
        assert!(t.is_runnable());
        assert_eq!(t.stack().len(), 1);
    }
}
