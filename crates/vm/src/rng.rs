//! A small, dependency-free, deterministic pseudo-random number
//! generator (splitmix64 seeding into xoshiro256**), used by the
//! random scheduler. Determinism per seed is what makes randomized
//! schedules replayable; statistical quality only needs to be good
//! enough to diversify thread interleavings.

/// A seeded deterministic PRNG. Cloning it clones the stream position,
/// so forked exploration states draw independent but reproducible
/// decision sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: [u64; 4],
}

impl SmallRng {
    /// A generator seeded from a 64-bit value (splitmix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniformly distributed index in `0..len`. `len` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution
    /// is exactly uniform for any `len`.
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "gen_index on an empty range");
        let n = len as u64;
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let (hi, lo) = mul_wide(x, n);
            if lo >= threshold {
                return hi as usize;
            }
        }
    }
}

/// Full 128-bit product of two u64s, as (high, low) words.
fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let p = (a as u128) * (b as u128);
    ((p >> 64) as u64, p as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_index_in_range_and_covers() {
        let mut r = SmallRng::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let i = r.gen_index(5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices hit: {seen:?}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SmallRng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
