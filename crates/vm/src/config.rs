//! Machine configuration.

/// Configuration switches for a [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmConfig {
    /// When `true`, signed overflow in `Add`/`Sub`/`Mul` crashes the
    /// program (the KLEE-style overflow detector shown in paper Fig. 2).
    /// When `false`, arithmetic wraps.
    pub detect_overflow: bool,
    /// Maximum call depth before the machine reports a crash, guarding
    /// against runaway recursion.
    pub max_call_depth: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            detect_overflow: false,
            max_call_depth: 128,
        }
    }
}

impl VmConfig {
    /// The default configuration with overflow detection enabled.
    pub fn with_overflow_detection() -> Self {
        VmConfig {
            detect_overflow: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = VmConfig::default();
        assert!(!c.detect_overflow);
        assert!(c.max_call_depth > 0);
        assert!(VmConfig::with_overflow_detection().detect_overflow);
    }
}
