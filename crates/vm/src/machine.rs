//! The machine: one execution state plus the instruction interpreter.
//!
//! A [`Machine`] is the complete state of one execution — memory, threads,
//! synchronization objects, inputs, outputs, symbolic variables and path
//! condition. It is `Clone`: a checkpoint (paper §3.2 "pre-race
//! checkpoint") is simply a clone, and the multi-path explorer forks states
//! by cloning at symbolic branches (paper §3.3).
//!
//! The machine executes a single instruction at a time
//! ([`Machine::step`]); scheduling, watchpoints and budgets live in
//! [`crate::exec`].

use std::collections::BTreeSet;
use std::sync::Arc;

use portend_symex::{BinOp, Expr, VarTable};

use crate::config::VmConfig;
use crate::error::{DeadlockInfo, VmError};
use crate::inst::{Inst, Operand};
use crate::io::InputSource;
use crate::mem::{Fnv, MemFault, Memory};
use crate::monitor::{
    AccessEvent, Monitor, SyncEvent, SyncEventKind, ThreadEvent, ThreadEventKind,
};
use crate::output::{OutputLog, OutputRec};
use crate::program::{AllocId, BlockId, Pc, Program, SyncId};
use crate::sched::SchedLog;
use crate::sync::SyncState;
use crate::thread::{Frame, ResumePhase, Thread, ThreadId, ThreadState};
use crate::value::Val;

/// Cost accounting for one [`Machine::fork`]: what the copy-on-write
/// snapshot copied eagerly and what it shared structurally. A non-CoW
/// (deep) fork would copy `bytes_copied + bytes_shared` up front.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkCost {
    /// Bytes the snapshot copied eagerly (thread stacks, path condition,
    /// symbolic-variable table — estimated from element sizes).
    pub bytes_copied: u64,
    /// Heap and log bytes shared structurally instead of copied (the
    /// memory allocations and the append-only output/schedule logs).
    pub bytes_shared: u64,
}

/// What happened when the machine executed (or tried to execute) one
/// instruction of the current thread.
#[derive(Debug, Clone, PartialEq)]
pub enum StepEvent {
    /// An instruction executed; the thread remains runnable.
    Ran,
    /// The current thread blocked (no instruction was consumed).
    Blocked,
    /// The current thread executed its final `Ret` and exited.
    Exited,
    /// A branch condition is symbolic: the caller must fork. The machine
    /// state is unchanged; apply a side with [`Machine::apply_branch`].
    SymBranch {
        /// The (symbolic) condition.
        cond: Expr,
        /// Target when the condition is non-zero.
        then_b: BlockId,
        /// Target when the condition is zero.
        else_b: BlockId,
    },
    /// An assertion condition is symbolic: the caller must fork. Resolve
    /// with [`Machine::apply_assert`].
    SymAssert {
        /// The (symbolic) asserted condition.
        cond: Expr,
        /// The assertion message.
        msg: String,
    },
    /// Execution crashed.
    Err(VmError),
}

/// One complete execution state.
#[derive(Debug, Clone)]
pub struct Machine {
    /// The executed program (shared, immutable).
    pub program: Arc<Program>,
    /// Memory.
    pub mem: Memory,
    /// All threads ever spawned (never removed; `ThreadId` indexes here).
    pub threads: Vec<Thread>,
    /// Synchronization object state.
    pub sync: SyncState,
    /// The thread currently scheduled.
    pub cur: ThreadId,
    /// Program input source.
    pub inputs: InputSource,
    /// Program output log.
    pub output: OutputLog,
    /// Symbolic variables created by this state.
    pub vars: VarTable,
    /// The path condition: conjunction of branch constraints accumulated
    /// along this state's path (paper §3.3).
    pub path: Vec<Expr>,
    /// Total instructions executed.
    pub steps: u64,
    /// Scheduler consultations performed (Fig. 9's "preemption points").
    pub preemptions: u64,
    /// Schedule decisions recorded by the executor when recording is on.
    pub sched_log: SchedLog,
    /// Number of symbolic branch forks this state went through
    /// (Fig. 9's "dependent branches").
    pub sym_branches: u64,
    cfg: VmConfig,
}

impl Machine {
    /// Boots a machine: thread `T0` starts at the program entry with
    /// argument `0`.
    pub fn new(program: Arc<Program>, inputs: InputSource, cfg: VmConfig) -> Self {
        let mem = Memory::from_specs(&program.allocs);
        let sync = SyncState::from_program(
            program.mutexes.len(),
            program.conds.len(),
            &program.barriers,
        );
        let main = Thread::new(
            ThreadId(0),
            Frame::new(&program, program.entry, &[Val::C(0)], None),
        );
        Machine {
            program,
            mem,
            threads: vec![main],
            sync,
            cur: ThreadId(0),
            inputs,
            output: OutputLog::new(),
            vars: VarTable::new(),
            path: Vec::new(),
            steps: 0,
            preemptions: 0,
            sched_log: SchedLog::new(),
            sym_branches: 0,
            cfg,
        }
    }

    /// A copy-on-write checkpoint of this state (paper §3.2 "pre-race
    /// checkpoint"). Equivalent to `clone()`: heap allocations and the
    /// append-only logs are shared structurally and copied lazily on
    /// first write, so the checkpoint itself costs O(threads), not
    /// O(heap).
    pub fn snapshot(&self) -> Machine {
        self.clone()
    }

    /// Forks this state (the multi-path explorer's operation at a
    /// symbolic branch, paper §3.3), reporting what the copy-on-write
    /// snapshot copied versus shared.
    pub fn fork(&self) -> (Machine, ForkCost) {
        let cost = ForkCost {
            bytes_copied: self.eager_fork_bytes(),
            bytes_shared: self.shared_fork_bytes(),
        };
        portend_obs::instant(
            portend_obs::EventKind::Fork,
            cost.bytes_copied,
            cost.bytes_shared,
        );
        (self.clone(), cost)
    }

    /// An eagerly deep-copied clone: memory and logs are copied now
    /// instead of on first write. Behaviorally identical to `clone()`
    /// (pinned by the workspace `cow_fork_equals_deep_clone` property
    /// suite); used as the non-CoW reference in tests and `bench_fork`.
    pub fn deep_clone(&self) -> Machine {
        let mut m = self.clone();
        m.mem = self.mem.deep_clone();
        m.output = self.output.deep_clone();
        m.sched_log = self.sched_log.deep_clone();
        m
    }

    /// Approximate bytes `clone` copies eagerly at a fork: thread
    /// stacks (frames and register files), the path condition, and the
    /// symbolic-variable table. Heap and log storage is shared instead
    /// (see [`Machine::shared_fork_bytes`]).
    pub fn eager_fork_bytes(&self) -> u64 {
        let mut bytes = std::mem::size_of::<Machine>() as u64;
        for t in &self.threads {
            bytes += std::mem::size_of::<Thread>() as u64;
            for f in &t.frames {
                bytes += (std::mem::size_of::<Frame>() + f.regs.len() * std::mem::size_of::<Val>())
                    as u64;
            }
        }
        bytes += (self.path.len() * std::mem::size_of::<Expr>()) as u64;
        bytes += (self.vars.len() * std::mem::size_of::<(u64, u64, u64)>()) as u64;
        bytes
    }

    /// Bytes a fork shares structurally instead of copying: the memory
    /// allocations plus the output and schedule logs. A deep clone
    /// copies all of them up front.
    pub fn shared_fork_bytes(&self) -> u64 {
        self.mem.heap_bytes() + self.output.heap_bytes() + self.sched_log.heap_bytes()
    }

    /// Bytes this state lazily copied on-write since construction
    /// (monotone, summed over memory and both logs; carried by value
    /// across clones, so `cow_bytes() - base` is one execution segment's
    /// deferred fork cost).
    pub fn cow_bytes(&self) -> u64 {
        self.mem.cow_bytes() + self.output.cow_bytes() + self.sched_log.cow_bytes()
    }

    /// The machine configuration.
    pub fn config(&self) -> VmConfig {
        self.cfg
    }

    /// A thread by id.
    ///
    /// # Panics
    ///
    /// Panics when `tid` is out of range.
    pub fn thread(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.0 as usize]
    }

    fn thread_mut(&mut self, tid: ThreadId) -> &mut Thread {
        &mut self.threads[tid.0 as usize]
    }

    /// Whether every thread has exited.
    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(Thread::is_finished)
    }

    /// Runnable threads, ascending, excluding `suspended`.
    pub fn runnable_threads(&self, suspended: &BTreeSet<ThreadId>) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|t| t.is_runnable() && !suspended.contains(&t.id))
            .map(|t| t.id)
            .collect()
    }

    /// The instruction the current thread would execute next.
    pub fn peek_inst(&self) -> Option<&Inst> {
        let pc = self.thread(self.cur).pc()?;
        self.program.inst_at(pc)
    }

    /// The memory access the current thread would perform next, as
    /// `(alloc, resolved offset, is_write)`; offset is `None` when the
    /// index register is symbolic.
    pub fn peek_access(&self) -> Option<(AllocId, Option<i64>, bool)> {
        let inst = self.peek_inst()?;
        let (alloc, index, is_write) = inst.memory_access()?;
        let idx = self.eval(index).as_concrete();
        Some((alloc, idx, is_write))
    }

    /// Evaluates an operand in the current thread's frame.
    pub fn eval(&self, op: Operand) -> Val {
        match op {
            Operand::Imm(v) => Val::C(v),
            Operand::Reg(r) => self.thread(self.cur).frame().regs[r as usize].clone(),
        }
    }

    fn set_reg(&mut self, r: u32, v: Val) {
        let tid = self.cur;
        self.thread_mut(tid).frame_mut().regs[r as usize] = v;
    }

    fn advance(&mut self) {
        let tid = self.cur;
        self.thread_mut(tid).frame_mut().idx += 1;
    }

    fn jump_to(&mut self, b: BlockId) {
        let tid = self.cur;
        let f = self.thread_mut(tid).frame_mut();
        f.block = b;
        f.idx = 0;
    }

    fn count_step(&mut self) {
        self.steps += 1;
        let tid = self.cur;
        self.thread_mut(tid).steps += 1;
    }

    /// Builds deadlock evidence from the blocked threads.
    pub fn deadlock_info(&self) -> DeadlockInfo {
        let mut edges = Vec::new();
        for t in &self.threads {
            if t.is_finished() || t.is_runnable() {
                continue;
            }
            let resource = t.state.resource().unwrap_or_else(|| "unknown".into());
            let holder = match t.state {
                ThreadState::BlockedMutex(m) => self.sync.mutex_owner(m),
                ThreadState::BlockedJoin(j) => (!self.thread(j).is_finished()).then_some(j),
                _ => None,
            };
            edges.push((t.id, resource, holder));
        }
        DeadlockInfo { edges }
    }

    /// A fingerprint of memory plus every thread's registers and pc — the
    /// "state of registers and memory immediately after the race" that the
    /// Record/Replay-Analyzer baseline compares (paper §2.1).
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.mem.fingerprint());
        for t in &self.threads {
            h.write_u64(t.id.0 as u64);
            h.write_u64(match t.state {
                ThreadState::Runnable => 0,
                ThreadState::BlockedMutex(_) => 1,
                ThreadState::BlockedCond(_) => 2,
                ThreadState::BlockedJoin(_) => 3,
                ThreadState::BlockedBarrier(_) => 4,
                ThreadState::Finished => 5,
            });
            for f in &t.frames {
                h.write_str(&f.pc().to_string());
                for r in &f.regs {
                    match r.as_concrete() {
                        Some(v) => h.write_u64(v as u64),
                        None => h.write_str(&r.to_string()),
                    }
                }
            }
        }
        h.finish()
    }

    /// Applies one side of a [`StepEvent::SymBranch`]: records the branch
    /// constraint and jumps to `target`.
    pub fn apply_branch(&mut self, target: BlockId, constraint: Expr) {
        self.path.push(constraint);
        self.sym_branches += 1;
        self.count_step();
        self.jump_to(target);
    }

    /// Resolves a [`StepEvent::SymAssert`]. With `pass == true` the
    /// constraint is recorded and execution continues; with `pass == false`
    /// the negated constraint is recorded and the failure error is
    /// returned (the caller marks this fork crashed).
    pub fn apply_assert(&mut self, pass: bool, cond: Expr, msg: &str) -> Option<VmError> {
        let tid = self.cur;
        let pc = self.thread(tid).pc().expect("asserting thread is live");
        self.sym_branches += 1;
        if pass {
            self.path.push(cond.truthy());
            self.count_step();
            self.advance();
            None
        } else {
            self.path.push(cond.not());
            Some(VmError::AssertFailed {
                tid,
                pc,
                msg: msg.to_string(),
            })
        }
    }

    /// Executes one instruction of the current thread.
    ///
    /// The current thread must be runnable. Returns [`StepEvent::Blocked`]
    /// without consuming an instruction when the thread blocks on a
    /// synchronization operation.
    pub fn step(&mut self, mon: &mut dyn Monitor) -> StepEvent {
        let tid = self.cur;
        debug_assert!(
            self.thread(tid).is_runnable(),
            "stepping a non-runnable thread"
        );
        let pc = match self.thread(tid).pc() {
            Some(pc) => pc,
            None => return StepEvent::Err(self.misuse(pc_unknown(), "stepping finished thread")),
        };
        let program = self.program.clone();
        let inst = match program.inst_at(pc) {
            Some(i) => i.clone(),
            None => return StepEvent::Err(self.misuse(pc, "pc out of range")),
        };

        // Pending resume obligations replace normal instruction dispatch.
        match self.thread(tid).phase {
            ResumePhase::CondReacquire(m) => return self.reacquire(tid, pc, m, mon),
            ResumePhase::BarrierDone => {
                self.thread_mut(tid).phase = ResumePhase::None;
                self.count_step();
                self.advance();
                return StepEvent::Ran;
            }
            ResumePhase::None => {}
        }

        match inst {
            Inst::Const { dst, value } => {
                self.count_step();
                self.set_reg(dst, Val::C(value));
                self.advance();
                StepEvent::Ran
            }
            Inst::Copy { dst, src } => {
                self.count_step();
                let v = self.eval(src);
                self.set_reg(dst, v);
                self.advance();
                StepEvent::Ran
            }
            Inst::Not { dst, src } => {
                self.count_step();
                let v = match self.eval(src) {
                    Val::C(v) => Val::C((v == 0) as i64),
                    Val::S(e) => Val::from(e.not()),
                };
                self.set_reg(dst, v);
                self.advance();
                StepEvent::Ran
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let (a, b) = (self.eval(lhs), self.eval(rhs));
                let v = match (a.as_concrete(), b.as_concrete()) {
                    (Some(x), Some(y)) => {
                        if self.cfg.detect_overflow {
                            match op.apply_checked(x, y) {
                                Some((v, false)) => Val::C(v),
                                Some((_, true)) => {
                                    return StepEvent::Err(VmError::Overflow { tid, pc })
                                }
                                None => return StepEvent::Err(VmError::DivisionByZero { tid, pc }),
                            }
                        } else {
                            match op.apply(x, y) {
                                Some(v) => Val::C(v),
                                None => return StepEvent::Err(VmError::DivisionByZero { tid, pc }),
                            }
                        }
                    }
                    _ => {
                        if matches!(op, BinOp::Div | BinOp::Rem) {
                            match b.as_concrete() {
                                Some(0) => {
                                    return StepEvent::Err(VmError::DivisionByZero { tid, pc })
                                }
                                Some(_) => {}
                                None => {
                                    return StepEvent::Err(VmError::SymbolicValue {
                                        tid,
                                        pc,
                                        what: "divisor".into(),
                                    })
                                }
                            }
                        }
                        Val::from(Expr::bin(op, a.to_expr(), b.to_expr()))
                    }
                };
                self.count_step();
                self.set_reg(dst, v);
                self.advance();
                StepEvent::Ran
            }
            Inst::Cmp { op, dst, lhs, rhs } => {
                self.count_step();
                let (a, b) = (self.eval(lhs), self.eval(rhs));
                let v = match (a.as_concrete(), b.as_concrete()) {
                    (Some(x), Some(y)) => Val::C(op.apply(x, y)),
                    _ => Val::from(a.to_expr().cmp(op, b.to_expr())),
                };
                self.set_reg(dst, v);
                self.advance();
                StepEvent::Ran
            }
            Inst::Load { dst, base, index } => {
                let idx = match self.eval(index).as_concrete() {
                    Some(i) => i,
                    None => {
                        return StepEvent::Err(VmError::SymbolicValue {
                            tid,
                            pc,
                            what: "address index".into(),
                        })
                    }
                };
                match self.mem.load(base, idx) {
                    Ok(v) => {
                        self.count_step();
                        self.set_reg(dst, v);
                        mon.on_access(&self.access_event(tid, pc, base, idx, false));
                        self.advance();
                        StepEvent::Ran
                    }
                    Err(f) => StepEvent::Err(self.mem_fault(tid, pc, base, idx, f)),
                }
            }
            Inst::Store { base, index, src } => {
                let idx = match self.eval(index).as_concrete() {
                    Some(i) => i,
                    None => {
                        return StepEvent::Err(VmError::SymbolicValue {
                            tid,
                            pc,
                            what: "address index".into(),
                        })
                    }
                };
                let v = self.eval(src);
                match self.mem.store(base, idx, v) {
                    Ok(()) => {
                        self.count_step();
                        mon.on_access(&self.access_event(tid, pc, base, idx, true));
                        self.advance();
                        StepEvent::Ran
                    }
                    Err(f) => StepEvent::Err(self.mem_fault(tid, pc, base, idx, f)),
                }
            }
            Inst::Jump { target } => {
                self.count_step();
                self.jump_to(target);
                StepEvent::Ran
            }
            Inst::Branch {
                cond,
                then_b,
                else_b,
            } => match self.eval(cond) {
                Val::C(v) => {
                    self.count_step();
                    self.jump_to(if v != 0 { then_b } else { else_b });
                    StepEvent::Ran
                }
                Val::S(e) => match e.as_const() {
                    Some(v) => {
                        self.count_step();
                        self.jump_to(if v != 0 { then_b } else { else_b });
                        StepEvent::Ran
                    }
                    None => StepEvent::SymBranch {
                        cond: e,
                        then_b,
                        else_b,
                    },
                },
            },
            Inst::Call { dst, func, args } => {
                if self.thread(tid).frames.len() >= self.cfg.max_call_depth {
                    return StepEvent::Err(VmError::AssertFailed {
                        tid,
                        pc,
                        msg: "maximum call depth exceeded".into(),
                    });
                }
                self.count_step();
                let argv: Vec<Val> = args.iter().map(|a| self.eval(*a)).collect();
                self.advance();
                let frame = Frame::new(&program, func, &argv, dst);
                self.thread_mut(tid).frames.push(frame);
                StepEvent::Ran
            }
            Inst::Ret { value } => {
                self.count_step();
                let v = value.map(|op| self.eval(op));
                let frame = self.thread_mut(tid).frames.pop().expect("live thread");
                if self.thread(tid).frames.is_empty() {
                    self.thread_mut(tid).state = ThreadState::Finished;
                    // Wake joiners.
                    for t in &mut self.threads {
                        if t.state == ThreadState::BlockedJoin(tid) {
                            t.state = ThreadState::Runnable;
                        }
                    }
                    mon.on_thread(&ThreadEvent {
                        tid,
                        pc,
                        kind: ThreadEventKind::Exited,
                    });
                    StepEvent::Exited
                } else {
                    if let (Some(r), Some(v)) = (frame.ret_to, v) {
                        self.set_reg(r, v);
                    }
                    StepEvent::Ran
                }
            }
            Inst::Spawn { dst, func, arg } => {
                self.count_step();
                let argv = self.eval(arg);
                let child = ThreadId(self.threads.len() as u32);
                let frame = Frame::new(&program, func, &[argv], None);
                self.threads.push(Thread::new(child, frame));
                self.set_reg(dst, Val::C(child.0 as i64));
                mon.on_thread(&ThreadEvent {
                    tid,
                    pc,
                    kind: ThreadEventKind::Spawned { child },
                });
                self.advance();
                StepEvent::Ran
            }
            Inst::Join { tid: target_op } => {
                let target = match self.eval(target_op).as_concrete() {
                    Some(v) if v >= 0 && (v as usize) < self.threads.len() => ThreadId(v as u32),
                    Some(_) => return StepEvent::Err(self.misuse(pc, "join of unknown thread")),
                    None => {
                        return StepEvent::Err(VmError::SymbolicValue {
                            tid,
                            pc,
                            what: "thread id".into(),
                        })
                    }
                };
                if self.thread(target).is_finished() {
                    self.count_step();
                    mon.on_thread(&ThreadEvent {
                        tid,
                        pc,
                        kind: ThreadEventKind::Joined { target },
                    });
                    self.advance();
                    StepEvent::Ran
                } else {
                    self.thread_mut(tid).state = ThreadState::BlockedJoin(target);
                    StepEvent::Blocked
                }
            }
            Inst::MutexLock { mutex } => {
                let mu = &mut self.sync.mutexes[mutex.0 as usize];
                match mu.owner {
                    None => {
                        mu.owner = Some(tid);
                        mu.waiters.retain(|w| *w != tid);
                        self.count_step();
                        mon.on_sync(&SyncEvent {
                            tid,
                            pc,
                            kind: SyncEventKind::MutexAcquired(mutex),
                        });
                        self.advance();
                        StepEvent::Ran
                    }
                    Some(owner) if owner == tid => {
                        StepEvent::Err(self.misuse(pc, "relocking a held (non-recursive) mutex"))
                    }
                    Some(_) => {
                        if !mu.waiters.contains(&tid) {
                            mu.waiters.push(tid);
                        }
                        self.thread_mut(tid).state = ThreadState::BlockedMutex(mutex);
                        StepEvent::Blocked
                    }
                }
            }
            Inst::MutexUnlock { mutex } => {
                let mu = &mut self.sync.mutexes[mutex.0 as usize];
                if mu.owner != Some(tid) {
                    return StepEvent::Err(self.misuse(pc, "unlocking a mutex not held"));
                }
                mu.owner = None;
                let waiters = std::mem::take(&mut mu.waiters);
                for w in waiters {
                    self.threads[w.0 as usize].state = ThreadState::Runnable;
                }
                self.count_step();
                mon.on_sync(&SyncEvent {
                    tid,
                    pc,
                    kind: SyncEventKind::MutexReleased(mutex),
                });
                self.advance();
                StepEvent::Ran
            }
            Inst::CondWait { cond, mutex } => {
                if self.sync.mutexes[mutex.0 as usize].owner != Some(tid) {
                    return StepEvent::Err(self.misuse(pc, "cond-wait without holding the mutex"));
                }
                // Release the mutex and wake contenders.
                let mu = &mut self.sync.mutexes[mutex.0 as usize];
                mu.owner = None;
                let waiters = std::mem::take(&mut mu.waiters);
                for w in waiters {
                    self.threads[w.0 as usize].state = ThreadState::Runnable;
                }
                mon.on_sync(&SyncEvent {
                    tid,
                    pc,
                    kind: SyncEventKind::MutexReleased(mutex),
                });
                self.sync.conds[cond.0 as usize].waiters.push(tid);
                self.thread_mut(tid).state = ThreadState::BlockedCond(cond);
                self.thread_mut(tid).phase = ResumePhase::CondReacquire(mutex);
                mon.on_sync(&SyncEvent {
                    tid,
                    pc,
                    kind: SyncEventKind::CondWaitStart { cond, mutex },
                });
                StepEvent::Blocked
            }
            Inst::CondSignal { cond } => {
                self.count_step();
                let c = &mut self.sync.conds[cond.0 as usize];
                let woken: Vec<ThreadId> = if c.waiters.is_empty() {
                    Vec::new()
                } else {
                    vec![c.waiters.remove(0)]
                };
                for w in &woken {
                    self.threads[w.0 as usize].state = ThreadState::Runnable;
                }
                mon.on_sync(&SyncEvent {
                    tid,
                    pc,
                    kind: SyncEventKind::CondSignalled { cond, woken },
                });
                self.advance();
                StepEvent::Ran
            }
            Inst::CondBroadcast { cond } => {
                self.count_step();
                let c = &mut self.sync.conds[cond.0 as usize];
                let woken = std::mem::take(&mut c.waiters);
                for w in &woken {
                    self.threads[w.0 as usize].state = ThreadState::Runnable;
                }
                mon.on_sync(&SyncEvent {
                    tid,
                    pc,
                    kind: SyncEventKind::CondSignalled { cond, woken },
                });
                self.advance();
                StepEvent::Ran
            }
            Inst::BarrierWait { barrier } => {
                let b = &mut self.sync.barriers[barrier.0 as usize];
                b.arrived.push(tid);
                if b.arrived.len() as u32 >= b.party {
                    let participants = std::mem::take(&mut b.arrived);
                    for p in &participants {
                        if *p != tid {
                            self.threads[p.0 as usize].state = ThreadState::Runnable;
                            self.threads[p.0 as usize].phase = ResumePhase::BarrierDone;
                        }
                    }
                    self.count_step();
                    mon.on_sync(&SyncEvent {
                        tid,
                        pc,
                        kind: SyncEventKind::BarrierReleased {
                            barrier,
                            participants,
                        },
                    });
                    self.advance();
                    StepEvent::Ran
                } else {
                    self.thread_mut(tid).state = ThreadState::BlockedBarrier(barrier);
                    StepEvent::Blocked
                }
            }
            Inst::Output { fd, value } => {
                self.count_step();
                let val = self.eval(value);
                let rec = OutputRec { fd, val, tid, pc };
                mon.on_output(&rec);
                self.output.push(rec);
                self.advance();
                StepEvent::Ran
            }
            Inst::Input { dst } => {
                let v = {
                    let vars = &mut self.vars;
                    self.inputs.next(vars)
                };
                match v {
                    Some(v) => {
                        self.count_step();
                        self.set_reg(dst, v);
                        self.advance();
                        StepEvent::Ran
                    }
                    None => StepEvent::Err(VmError::InputExhausted { tid, pc }),
                }
            }
            Inst::Assert { cond, msg } => match self.eval(cond) {
                Val::C(v) => {
                    if v != 0 {
                        self.count_step();
                        self.advance();
                        StepEvent::Ran
                    } else {
                        StepEvent::Err(VmError::AssertFailed { tid, pc, msg })
                    }
                }
                Val::S(e) => match e.as_const() {
                    Some(0) => StepEvent::Err(VmError::AssertFailed { tid, pc, msg }),
                    Some(_) => {
                        self.count_step();
                        self.advance();
                        StepEvent::Ran
                    }
                    None => StepEvent::SymAssert { cond: e, msg },
                },
            },
            Inst::Yield | Inst::Nop => {
                self.count_step();
                self.advance();
                StepEvent::Ran
            }
            Inst::Free { base } => match self.mem.free(base) {
                Ok(()) => {
                    self.count_step();
                    self.advance();
                    StepEvent::Ran
                }
                Err(_) => StepEvent::Err(VmError::UseAfterFree {
                    tid,
                    pc,
                    alloc: self.mem.alloc(base).name.clone(),
                }),
            },
        }
    }

    fn reacquire(
        &mut self,
        tid: ThreadId,
        pc: Pc,
        mutex: SyncId,
        mon: &mut dyn Monitor,
    ) -> StepEvent {
        let mu = &mut self.sync.mutexes[mutex.0 as usize];
        match mu.owner {
            None => {
                mu.owner = Some(tid);
                mu.waiters.retain(|w| *w != tid);
                self.thread_mut(tid).phase = ResumePhase::None;
                self.count_step();
                mon.on_sync(&SyncEvent {
                    tid,
                    pc,
                    kind: SyncEventKind::MutexAcquired(mutex),
                });
                self.advance();
                StepEvent::Ran
            }
            Some(_) => {
                if !mu.waiters.contains(&tid) {
                    mu.waiters.push(tid);
                }
                self.thread_mut(tid).state = ThreadState::BlockedMutex(mutex);
                StepEvent::Blocked
            }
        }
    }

    fn access_event(
        &self,
        tid: ThreadId,
        pc: Pc,
        alloc: AllocId,
        offset: i64,
        is_write: bool,
    ) -> AccessEvent {
        AccessEvent {
            tid,
            pc,
            line: self.program.line_at(pc),
            alloc,
            offset: offset as usize,
            is_write,
            step: self.steps,
        }
    }

    fn mem_fault(&self, tid: ThreadId, pc: Pc, base: AllocId, _idx: i64, f: MemFault) -> VmError {
        let alloc = self.mem.alloc(base).name.clone();
        match f {
            MemFault::OutOfBounds { index, len } => VmError::OutOfBounds {
                tid,
                pc,
                alloc,
                index,
                len,
            },
            MemFault::UseAfterFree | MemFault::DoubleFree => {
                VmError::UseAfterFree { tid, pc, alloc }
            }
        }
    }

    fn misuse(&self, pc: Pc, what: &str) -> VmError {
        VmError::SyncMisuse {
            tid: self.cur,
            pc,
            what: what.to_string(),
        }
    }
}

fn pc_unknown() -> Pc {
    Pc {
        func: crate::program::FuncId(u32::MAX),
        block: BlockId(u32::MAX),
        idx: u32::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::io::{InputMode, InputSpec};
    use crate::monitor::NullMonitor;

    fn boot(p: Program, inputs: Vec<i64>) -> Machine {
        Machine::new(
            Arc::new(p),
            InputSource::new(InputSpec::concrete(inputs), InputMode::Concrete),
            VmConfig::default(),
        )
    }

    use crate::program::Program;

    #[test]
    fn arithmetic_and_output() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let main = pb.func("main", |f| {
            let a = f.input();
            let b = f.add(a, Operand::Imm(5));
            f.output(1, b);
            f.ret(None);
        });
        let mut m = boot(pb.build(main).unwrap(), vec![10]);
        let mut mon = NullMonitor;
        loop {
            match m.step(&mut mon) {
                StepEvent::Ran => {}
                StepEvent::Exited => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(m.output.concrete_values(), Some(vec![15]));
        assert!(m.all_finished());
    }

    #[test]
    fn division_by_zero_crashes() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let main = pb.func("main", |f| {
            let a = f.input();
            let b = f.bin(portend_symex::BinOp::Div, Operand::Imm(4), a);
            f.output(1, b);
            f.ret(None);
        });
        let mut m = boot(pb.build(main).unwrap(), vec![0]);
        let mut mon = NullMonitor;
        let err = loop {
            match m.step(&mut mon) {
                StepEvent::Ran => {}
                StepEvent::Err(e) => break e,
                other => panic!("{other:?}"),
            }
        };
        assert!(matches!(err, VmError::DivisionByZero { .. }));
    }

    #[test]
    fn overflow_detection_configurable() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let main = pb.func("main", |f| {
            let v = f.add(Operand::Imm(i64::MAX), Operand::Imm(1));
            f.output(1, v);
            f.ret(None);
        });
        let p = pb.build(main).unwrap();
        // Wrapping by default.
        let mut m = boot(p.clone(), vec![]);
        let mut mon = NullMonitor;
        loop {
            match m.step(&mut mon) {
                StepEvent::Ran => {}
                StepEvent::Exited => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(m.output.concrete_values(), Some(vec![i64::MIN]));
        // Crash with detection on.
        let mut m = Machine::new(
            Arc::new(p),
            InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
            VmConfig::with_overflow_detection(),
        );
        let err = loop {
            match m.step(&mut mon) {
                StepEvent::Ran => {}
                StepEvent::Err(e) => break e,
                other => panic!("{other:?}"),
            }
        };
        assert!(matches!(err, VmError::Overflow { .. }));
    }

    #[test]
    fn call_and_return() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let double = pb.func("double", |f| {
            let x = f.param();
            let v = f.mul(x, Operand::Imm(2));
            f.ret(Some(v));
        });
        let main = pb.func("main", |f| {
            let v = f.call(double, &[Operand::Imm(21)]);
            f.output(1, v);
            f.ret(None);
        });
        let mut m = boot(pb.build(main).unwrap(), vec![]);
        let mut mon = NullMonitor;
        loop {
            match m.step(&mut mon) {
                StepEvent::Ran => {}
                StepEvent::Exited => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(m.output.concrete_values(), Some(vec![42]));
    }

    #[test]
    fn out_of_bounds_store_crashes() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let arr = pb.array("arr", 4);
        let main = pb.func("main", |f| {
            f.store(arr, Operand::Imm(4), Operand::Imm(1));
            f.ret(None);
        });
        let mut m = boot(pb.build(main).unwrap(), vec![]);
        let mut mon = NullMonitor;
        let err = loop {
            match m.step(&mut mon) {
                StepEvent::Ran => {}
                StepEvent::Err(e) => break e,
                other => panic!("{other:?}"),
            }
        };
        assert!(matches!(
            err,
            VmError::OutOfBounds {
                index: 4,
                len: 4,
                ..
            }
        ));
    }

    #[test]
    fn free_then_access_is_uaf() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let g = pb.global("g", 0);
        let main = pb.func("main", |f| {
            f.free(g);
            let v = f.load(g, Operand::Imm(0));
            f.output(1, v);
            f.ret(None);
        });
        let mut m = boot(pb.build(main).unwrap(), vec![]);
        let mut mon = NullMonitor;
        let err = loop {
            match m.step(&mut mon) {
                StepEvent::Ran => {}
                StepEvent::Err(e) => break e,
                other => panic!("{other:?}"),
            }
        };
        assert!(matches!(err, VmError::UseAfterFree { .. }));
    }
}
