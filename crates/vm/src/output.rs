//! Program output logs.
//!
//! Portend intercepts output system calls and records their arguments
//! (paper §4): concrete values during plain runs, symbolic constraints
//! during multi-path primaries. The classifier compares logs either
//! concretely (single-pre/single-post) or symbolically (§3.3.1).

use std::fmt;

use crate::mem::Fnv;
use crate::program::Pc;
use crate::thread::ThreadId;
use crate::value::Val;

/// One output operation (one `write`-like system call argument).
#[derive(Debug, Clone, PartialEq)]
pub struct OutputRec {
    /// Output channel (1 = stdout, 2 = stderr, higher = app-specific).
    pub fd: i64,
    /// The emitted value (symbolic during multi-path primaries).
    pub val: Val,
    /// Emitting thread.
    pub tid: ThreadId,
    /// Where the output was produced (reports print this location).
    pub pc: Pc,
}

/// The ordered log of all outputs of one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutputLog {
    /// The records, in emission order.
    pub recs: Vec<OutputRec>,
}

impl OutputLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, rec: OutputRec) {
        self.recs.push(rec);
    }

    /// Number of output operations.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether nothing was output.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Iterates over records.
    pub fn iter(&self) -> impl Iterator<Item = &OutputRec> {
        self.recs.iter()
    }

    /// All values if fully concrete, else `None`.
    pub fn concrete_values(&self) -> Option<Vec<i64>> {
        self.recs.iter().map(|r| r.val.as_concrete()).collect()
    }

    /// Whether any record is symbolic.
    pub fn has_symbolic(&self) -> bool {
        self.recs.iter().any(|r| r.val.is_symbolic())
    }

    /// A hash chain over `(fd, value)` pairs, allowing cheap comparison of
    /// large outputs (paper §4 "Portend hashes program outputs").
    /// Symbolic values hash their printed form.
    pub fn hash_chain(&self) -> u64 {
        let mut h = Fnv::new();
        for r in &self.recs {
            h.write_u64(r.fd as u64);
            match r.val.as_concrete() {
                Some(v) => h.write_u64(v as u64),
                None => h.write_str(&r.val.to_string()),
            }
        }
        h.finish()
    }

    /// Positions and values where two concrete logs differ, as
    /// `(index, self value, other value)`; a `None` side means the log
    /// ended early. Used for "output differs" evidence.
    pub fn diff_concrete(&self, other: &OutputLog) -> Vec<(usize, Option<Val>, Option<Val>)> {
        let mut out = Vec::new();
        let n = self.recs.len().max(other.recs.len());
        for i in 0..n {
            let a = self.recs.get(i).map(|r| r.val.clone());
            let b = other.recs.get(i).map(|r| r.val.clone());
            if a != b {
                out.push((i, a, b));
            }
        }
        out
    }
}

impl fmt::Display for OutputLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.recs.iter().enumerate() {
            writeln!(f, "[{i}] fd={} {} (by {} at {})", r.fd, r.val, r.tid, r.pc)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BlockId, FuncId};

    fn rec(v: i64) -> OutputRec {
        OutputRec {
            fd: 1,
            val: Val::C(v),
            tid: ThreadId(0),
            pc: Pc {
                func: FuncId(0),
                block: BlockId(0),
                idx: 0,
            },
        }
    }

    #[test]
    fn hash_chain_distinguishes_logs() {
        let mut a = OutputLog::new();
        let mut b = OutputLog::new();
        a.push(rec(1));
        a.push(rec(2));
        b.push(rec(1));
        b.push(rec(3));
        assert_ne!(a.hash_chain(), b.hash_chain());
        assert_eq!(a.hash_chain(), a.clone().hash_chain());
    }

    #[test]
    fn diff_reports_positions() {
        let mut a = OutputLog::new();
        let mut b = OutputLog::new();
        a.push(rec(1));
        a.push(rec(2));
        b.push(rec(1));
        let d = a.diff_concrete(&b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 1);
        assert_eq!(d[0].1, Some(Val::C(2)));
        assert_eq!(d[0].2, None);
    }

    #[test]
    fn concrete_values_extraction() {
        let mut a = OutputLog::new();
        a.push(rec(5));
        assert_eq!(a.concrete_values(), Some(vec![5]));
        assert!(!a.has_symbolic());
    }
}
