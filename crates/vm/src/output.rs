//! Program output logs.
//!
//! Portend intercepts output system calls and records their arguments
//! (paper §4): concrete values during plain runs, symbolic constraints
//! during multi-path primaries. The classifier compares logs either
//! concretely (single-pre/single-post) or symbolically (§3.3.1).
//!
//! The record list is append-only and `Arc`-backed (shared `CowList`
//! storage): cloning a log (part of every machine fork)
//! copies one pointer, and the first append after a fork copies the
//! records once (copy-on-write), tracked by [`OutputLog::cow_bytes`]
//! for fork-cost accounting.

use std::fmt;

use crate::cowlog::CowList;
use crate::mem::Fnv;
use crate::program::Pc;
use crate::thread::ThreadId;
use crate::value::Val;

/// One output operation (one `write`-like system call argument).
#[derive(Debug, Clone, PartialEq)]
pub struct OutputRec {
    /// Output channel (1 = stdout, 2 = stderr, higher = app-specific).
    pub fd: i64,
    /// The emitted value (symbolic during multi-path primaries).
    pub val: Val,
    /// Emitting thread.
    pub tid: ThreadId,
    /// Where the output was produced (reports print this location).
    pub pc: Pc,
}

/// The ordered log of all outputs of one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutputLog {
    recs: CowList<OutputRec>,
}

impl OutputLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, rec: OutputRec) {
        self.recs.push(rec);
    }

    /// Number of output operations.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether nothing was output.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// The record at position `i`.
    pub fn get(&self, i: usize) -> Option<&OutputRec> {
        self.recs.as_slice().get(i)
    }

    /// Iterates over records.
    pub fn iter(&self) -> impl Iterator<Item = &OutputRec> {
        self.recs.as_slice().iter()
    }

    /// All values if fully concrete, else `None`.
    pub fn concrete_values(&self) -> Option<Vec<i64>> {
        self.iter().map(|r| r.val.as_concrete()).collect()
    }

    /// Whether any record is symbolic.
    pub fn has_symbolic(&self) -> bool {
        self.iter().any(|r| r.val.is_symbolic())
    }

    /// Bytes a deep copy of the log would move; the cost a fork shares
    /// away structurally.
    pub fn heap_bytes(&self) -> u64 {
        self.recs.heap_bytes()
    }

    /// Bytes this instance copied on-write since construction (monotone).
    pub fn cow_bytes(&self) -> u64 {
        self.recs.cow_bytes()
    }

    /// An eagerly deep-copied clone (no shared storage); the non-CoW
    /// reference for transparency tests and the fork microbench.
    pub fn deep_clone(&self) -> OutputLog {
        OutputLog {
            recs: self.recs.deep_clone(),
        }
    }

    /// A hash chain over `(fd, value)` pairs, allowing cheap comparison of
    /// large outputs (paper §4 "Portend hashes program outputs").
    /// Symbolic values hash their printed form.
    pub fn hash_chain(&self) -> u64 {
        let mut h = Fnv::new();
        for r in self.iter() {
            h.write_u64(r.fd as u64);
            match r.val.as_concrete() {
                Some(v) => h.write_u64(v as u64),
                None => h.write_str(&r.val.to_string()),
            }
        }
        h.finish()
    }

    /// Positions where two concrete logs provably diverge, as
    /// `(index, self record, other record)`; a `None` side means the log
    /// ended early. Used for "output differs" evidence.
    ///
    /// A position diverges when the *values* differ **or** when the
    /// output channels (`fd`) differ — the same refinement the symbolic
    /// comparison path applies: an fd-only mismatch inside the common
    /// prefix is the first provable divergence even when one log is
    /// longer than the other (the count mismatch alone would blame
    /// `min(len)`, past the real divergence).
    pub fn diff_concrete(
        &self,
        other: &OutputLog,
    ) -> Vec<(usize, Option<OutputRec>, Option<OutputRec>)> {
        let mut out = Vec::new();
        let n = self.len().max(other.len());
        for i in 0..n {
            let a = self.get(i);
            let b = other.get(i);
            let diverges = match (a, b) {
                (Some(x), Some(y)) => x.fd != y.fd || x.val != y.val,
                _ => true,
            };
            if diverges {
                out.push((i, a.cloned(), b.cloned()));
            }
        }
        out
    }
}

impl fmt::Display for OutputLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.iter().enumerate() {
            writeln!(f, "[{i}] fd={} {} (by {} at {})", r.fd, r.val, r.tid, r.pc)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BlockId, FuncId};

    fn rec(v: i64) -> OutputRec {
        rec_fd(1, v)
    }

    fn rec_fd(fd: i64, v: i64) -> OutputRec {
        OutputRec {
            fd,
            val: Val::C(v),
            tid: ThreadId(0),
            pc: Pc {
                func: FuncId(0),
                block: BlockId(0),
                idx: 0,
            },
        }
    }

    #[test]
    fn hash_chain_distinguishes_logs() {
        let mut a = OutputLog::new();
        let mut b = OutputLog::new();
        a.push(rec(1));
        a.push(rec(2));
        b.push(rec(1));
        b.push(rec(3));
        assert_ne!(a.hash_chain(), b.hash_chain());
        assert_eq!(a.hash_chain(), a.clone().hash_chain());
    }

    #[test]
    fn diff_reports_positions() {
        let mut a = OutputLog::new();
        let mut b = OutputLog::new();
        a.push(rec(1));
        a.push(rec(2));
        b.push(rec(1));
        let d = a.diff_concrete(&b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 1);
        assert_eq!(d[0].1.as_ref().map(|r| r.val.clone()), Some(Val::C(2)));
        assert_eq!(d[0].2, None);
    }

    #[test]
    fn diff_catches_fd_only_mismatch_inside_prefix() {
        // Same values, but the second op went to a different channel —
        // and one log is longer. The first provable divergence is the fd
        // mismatch at position 1, not the extra op at min(len) = 2.
        let mut a = OutputLog::new();
        let mut b = OutputLog::new();
        a.push(rec(1));
        a.push(rec_fd(1, 2));
        b.push(rec(1));
        b.push(rec_fd(2, 2));
        b.push(rec(3));
        let d = a.diff_concrete(&b);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, 1, "fd divergence precedes the count mismatch");
        assert_eq!(d[0].1.as_ref().map(|r| r.fd), Some(1));
        assert_eq!(d[0].2.as_ref().map(|r| r.fd), Some(2));
        assert_eq!(d[1].0, 2);
    }

    #[test]
    fn concrete_values_extraction() {
        let mut a = OutputLog::new();
        a.push(rec(5));
        assert_eq!(a.concrete_values(), Some(vec![5]));
        assert!(!a.has_symbolic());
    }

    #[test]
    fn clone_shares_until_push() {
        let mut a = OutputLog::new();
        a.push(rec(1));
        a.push(rec(2));
        let mut b = a.clone();
        assert_eq!(b.cow_bytes(), 0);
        b.push(rec(3));
        assert!(b.cow_bytes() > 0, "first post-fork append copies the log");
        assert_eq!(a.cow_bytes(), 0);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(a.deep_clone(), a);
    }
}
