//! Synchronization object state: mutexes, condition variables, barriers.

use crate::program::{BarrierSpec, SyncId};
use crate::thread::ThreadId;

/// Runtime state of one mutex.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutexState {
    /// The owning thread, if held.
    pub owner: Option<ThreadId>,
    /// Threads blocked trying to acquire.
    pub waiters: Vec<ThreadId>,
}

/// Runtime state of one condition variable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CondState {
    /// Threads waiting on the condition.
    pub waiters: Vec<ThreadId>,
}

/// Runtime state of one barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierState {
    /// Party size.
    pub party: u32,
    /// Threads that have arrived and are blocked.
    pub arrived: Vec<ThreadId>,
}

/// All synchronization objects of one execution state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncState {
    /// Mutexes, indexed by the mutex `SyncId` space.
    pub mutexes: Vec<MutexState>,
    /// Condition variables, indexed by the cond `SyncId` space.
    pub conds: Vec<CondState>,
    /// Barriers, indexed by the barrier `SyncId` space.
    pub barriers: Vec<BarrierState>,
}

impl SyncState {
    /// Instantiates sync state from program declarations.
    pub fn from_program(n_mutexes: usize, n_conds: usize, barriers: &[BarrierSpec]) -> Self {
        SyncState {
            mutexes: vec![MutexState::default(); n_mutexes],
            conds: vec![CondState::default(); n_conds],
            barriers: barriers
                .iter()
                .map(|b| BarrierState {
                    party: b.party,
                    arrived: Vec::new(),
                })
                .collect(),
        }
    }

    /// The mutexes currently held by `tid` (used by the lockset detector
    /// and by deadlock reports).
    pub fn held_by(&self, tid: ThreadId) -> Vec<SyncId> {
        self.mutexes
            .iter()
            .enumerate()
            .filter(|(_, m)| m.owner == Some(tid))
            .map(|(i, _)| SyncId(i as u32))
            .collect()
    }

    /// The owner of a mutex.
    pub fn mutex_owner(&self, m: SyncId) -> Option<ThreadId> {
        self.mutexes[m.0 as usize].owner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn held_by_lists_owned_mutexes() {
        let mut s = SyncState::from_program(3, 0, &[]);
        s.mutexes[0].owner = Some(ThreadId(1));
        s.mutexes[2].owner = Some(ThreadId(1));
        s.mutexes[1].owner = Some(ThreadId(0));
        assert_eq!(s.held_by(ThreadId(1)), vec![SyncId(0), SyncId(2)]);
        assert_eq!(s.mutex_owner(SyncId(1)), Some(ThreadId(0)));
    }

    #[test]
    fn barrier_party_from_spec() {
        let s = SyncState::from_program(
            0,
            0,
            &[BarrierSpec {
                name: "b".into(),
                party: 4,
            }],
        );
        assert_eq!(s.barriers[0].party, 4);
        assert!(s.barriers[0].arrived.is_empty());
    }
}
