//! Execution monitors: the hook interface race detectors plug into.
//!
//! The machine emits an event for every shared-memory access,
//! synchronization operation, thread lifecycle change, and output. The
//! happens-before and lockset detectors in `portend-race` are monitors;
//! so is the lock-graph tracker used for deadlock evidence.

use crate::output::OutputRec;
use crate::program::{AllocId, Pc, SyncId};
use crate::thread::ThreadId;

/// A shared-memory access (a potential racing access).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessEvent {
    /// The accessing thread.
    pub tid: ThreadId,
    /// Where the access executes.
    pub pc: Pc,
    /// Source line of the access.
    pub line: u32,
    /// The accessed allocation.
    pub alloc: AllocId,
    /// Offset within the allocation.
    pub offset: usize,
    /// `true` for stores.
    pub is_write: bool,
    /// Global instruction index of the access (for precise replay when an
    /// instruction executes many times; paper §3.1).
    pub step: u64,
}

/// Synchronization event kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncEventKind {
    /// A mutex was acquired.
    MutexAcquired(SyncId),
    /// A mutex was released.
    MutexReleased(SyncId),
    /// A thread started waiting on a condition variable (after releasing
    /// the mutex).
    CondWaitStart {
        /// The condition variable.
        cond: SyncId,
        /// The released mutex.
        mutex: SyncId,
    },
    /// A signal woke the listed threads (empty for a lost signal).
    CondSignalled {
        /// The condition variable.
        cond: SyncId,
        /// Woken threads.
        woken: Vec<ThreadId>,
    },
    /// A barrier released its full party.
    BarrierReleased {
        /// The barrier.
        barrier: SyncId,
        /// All released participants.
        participants: Vec<ThreadId>,
    },
}

/// A synchronization event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncEvent {
    /// The thread performing the operation.
    pub tid: ThreadId,
    /// Where it executes.
    pub pc: Pc,
    /// What happened.
    pub kind: SyncEventKind,
}

/// Thread lifecycle event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadEventKind {
    /// `tid` spawned `child`.
    Spawned {
        /// The new thread.
        child: ThreadId,
    },
    /// `tid` exited.
    Exited,
    /// `tid` observed the exit of `target` via join.
    Joined {
        /// The joined (already exited) thread.
        target: ThreadId,
    },
}

/// A thread lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadEvent {
    /// The acting thread.
    pub tid: ThreadId,
    /// Where it acted (pc of the spawn/join; thread's last pc for exit).
    pub pc: Pc,
    /// What happened.
    pub kind: ThreadEventKind,
}

/// Observer of a machine's execution. All methods default to no-ops so
/// implementations override only what they need.
pub trait Monitor {
    /// Called after each successful shared-memory access.
    fn on_access(&mut self, _ev: &AccessEvent) {}
    /// Called after each synchronization state change.
    fn on_sync(&mut self, _ev: &SyncEvent) {}
    /// Called on thread spawn/exit/join.
    fn on_thread(&mut self, _ev: &ThreadEvent) {}
    /// Called after each `Output` instruction.
    fn on_output(&mut self, _rec: &OutputRec) {}
}

/// A monitor that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}

/// Fans events out to several monitors in order.
pub struct MonitorSet<'a> {
    monitors: Vec<&'a mut dyn Monitor>,
}

impl<'a> MonitorSet<'a> {
    /// Creates a fan-out monitor.
    pub fn new(monitors: Vec<&'a mut dyn Monitor>) -> Self {
        MonitorSet { monitors }
    }
}

impl Monitor for MonitorSet<'_> {
    fn on_access(&mut self, ev: &AccessEvent) {
        for m in &mut self.monitors {
            m.on_access(ev);
        }
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        for m in &mut self.monitors {
            m.on_sync(ev);
        }
    }
    fn on_thread(&mut self, ev: &ThreadEvent) {
        for m in &mut self.monitors {
            m.on_thread(ev);
        }
    }
    fn on_output(&mut self, rec: &OutputRec) {
        for m in &mut self.monitors {
            m.on_output(rec);
        }
    }
}

/// A monitor that records every event, useful in tests.
#[derive(Debug, Clone, Default)]
pub struct RecordingMonitor {
    /// All access events, in order.
    pub accesses: Vec<AccessEvent>,
    /// All sync events, in order.
    pub syncs: Vec<SyncEvent>,
    /// All thread events, in order.
    pub threads: Vec<ThreadEvent>,
    /// Number of outputs observed.
    pub outputs: usize,
}

impl Monitor for RecordingMonitor {
    fn on_access(&mut self, ev: &AccessEvent) {
        self.accesses.push(ev.clone());
    }
    fn on_sync(&mut self, ev: &SyncEvent) {
        self.syncs.push(ev.clone());
    }
    fn on_thread(&mut self, ev: &ThreadEvent) {
        self.threads.push(*ev);
    }
    fn on_output(&mut self, _rec: &OutputRec) {
        self.outputs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BlockId, FuncId};

    fn pc() -> Pc {
        Pc {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        }
    }

    #[test]
    fn monitor_set_fans_out() {
        let mut a = RecordingMonitor::default();
        let mut b = RecordingMonitor::default();
        {
            let mut set = MonitorSet::new(vec![&mut a, &mut b]);
            set.on_thread(&ThreadEvent {
                tid: ThreadId(0),
                pc: pc(),
                kind: ThreadEventKind::Exited,
            });
        }
        assert_eq!(a.threads.len(), 1);
        assert_eq!(b.threads.len(), 1);
    }

    #[test]
    fn null_monitor_is_harmless() {
        let mut n = NullMonitor;
        n.on_access(&AccessEvent {
            tid: ThreadId(0),
            pc: pc(),
            line: 0,
            alloc: AllocId(0),
            offset: 0,
            is_write: false,
            step: 0,
        });
    }
}
