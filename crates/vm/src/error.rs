//! VM error conditions.
//!
//! These are the "basic" specification violations of the paper (§3.5):
//! crashes (memory errors, division by zero, overflow, failed assertions),
//! and deadlocks. Portend classifies a race as "spec violated" whenever the
//! primary or an alternate execution raises one of these.

use std::fmt;

use crate::program::Pc;
use crate::thread::ThreadId;

/// A fatal error raised while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A load or store outside the bounds of its allocation.
    OutOfBounds {
        /// Faulting thread.
        tid: ThreadId,
        /// Faulting program counter.
        pc: Pc,
        /// Name of the accessed allocation.
        alloc: String,
        /// The out-of-range index.
        index: i64,
        /// The allocation length.
        len: usize,
    },
    /// A load or store to a freed allocation.
    UseAfterFree {
        /// Faulting thread.
        tid: ThreadId,
        /// Faulting program counter.
        pc: Pc,
        /// Name of the accessed allocation.
        alloc: String,
    },
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// Faulting thread.
        tid: ThreadId,
        /// Faulting program counter.
        pc: Pc,
    },
    /// Signed overflow, reported when the KLEE-style overflow detector is
    /// enabled in [`crate::VmConfig`].
    Overflow {
        /// Faulting thread.
        tid: ThreadId,
        /// Faulting program counter.
        pc: Pc,
    },
    /// An `Assert` instruction whose condition evaluated to zero.
    AssertFailed {
        /// Faulting thread.
        tid: ThreadId,
        /// Faulting program counter.
        pc: Pc,
        /// The assertion message.
        msg: String,
    },
    /// Every live thread is blocked: a deadlock.
    Deadlock(DeadlockInfo),
    /// A mutex was unlocked by a thread that does not hold it, or a
    /// condition wait was issued without holding the mutex.
    SyncMisuse {
        /// Faulting thread.
        tid: ThreadId,
        /// Faulting program counter.
        pc: Pc,
        /// Human-readable description of the misuse.
        what: String,
    },
    /// A value that must be concrete (address index, sync object id,
    /// thread id, divisor) was symbolic. The workloads in this repository
    /// are written to avoid this; see `DESIGN.md` limitations.
    SymbolicValue {
        /// Faulting thread.
        tid: ThreadId,
        /// Faulting program counter.
        pc: Pc,
        /// What kind of operand was symbolic.
        what: String,
    },
    /// An `Input` instruction ran but the input queue was exhausted.
    InputExhausted {
        /// Faulting thread.
        tid: ThreadId,
        /// Faulting program counter.
        pc: Pc,
    },
}

impl VmError {
    /// The thread that triggered the error, when attributable to one.
    pub fn tid(&self) -> Option<ThreadId> {
        match self {
            VmError::OutOfBounds { tid, .. }
            | VmError::UseAfterFree { tid, .. }
            | VmError::DivisionByZero { tid, .. }
            | VmError::Overflow { tid, .. }
            | VmError::AssertFailed { tid, .. }
            | VmError::SyncMisuse { tid, .. }
            | VmError::SymbolicValue { tid, .. }
            | VmError::InputExhausted { tid, .. } => Some(*tid),
            VmError::Deadlock(_) => None,
        }
    }

    /// The faulting program counter, when attributable to one.
    pub fn pc(&self) -> Option<Pc> {
        match self {
            VmError::OutOfBounds { pc, .. }
            | VmError::UseAfterFree { pc, .. }
            | VmError::DivisionByZero { pc, .. }
            | VmError::Overflow { pc, .. }
            | VmError::AssertFailed { pc, .. }
            | VmError::SyncMisuse { pc, .. }
            | VmError::SymbolicValue { pc, .. }
            | VmError::InputExhausted { pc, .. } => Some(*pc),
            VmError::Deadlock(_) => None,
        }
    }

    /// Whether this error is a "crash" in the paper's sense (Table 2
    /// distinguishes crashes from deadlocks and semantic violations).
    pub fn is_crash(&self) -> bool {
        !matches!(self, VmError::Deadlock(_))
    }

    /// Short category label used in reports and Table 2.
    pub fn category(&self) -> &'static str {
        match self {
            VmError::OutOfBounds { .. } => "memory-error",
            VmError::UseAfterFree { .. } => "use-after-free",
            VmError::DivisionByZero { .. } => "div-by-zero",
            VmError::Overflow { .. } => "overflow",
            VmError::AssertFailed { .. } => "assert",
            VmError::Deadlock(_) => "deadlock",
            VmError::SyncMisuse { .. } => "sync-misuse",
            VmError::SymbolicValue { .. } => "symbolic-value",
            VmError::InputExhausted { .. } => "input-exhausted",
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { tid, pc, alloc, index, len } => write!(
                f,
                "out-of-bounds access to `{alloc}` at index {index} (len {len}) by thread {tid} at {pc}"
            ),
            VmError::UseAfterFree { tid, pc, alloc } => {
                write!(f, "use-after-free of `{alloc}` by thread {tid} at {pc}")
            }
            VmError::DivisionByZero { tid, pc } => {
                write!(f, "division by zero in thread {tid} at {pc}")
            }
            VmError::Overflow { tid, pc } => {
                write!(f, "signed overflow in thread {tid} at {pc}")
            }
            VmError::AssertFailed { tid, pc, msg } => {
                write!(f, "assertion failed in thread {tid} at {pc}: {msg}")
            }
            VmError::Deadlock(info) => write!(f, "deadlock: {info}"),
            VmError::SyncMisuse { tid, pc, what } => {
                write!(f, "synchronization misuse by thread {tid} at {pc}: {what}")
            }
            VmError::SymbolicValue { tid, pc, what } => {
                write!(f, "symbolic {what} in thread {tid} at {pc}")
            }
            VmError::InputExhausted { tid, pc } => {
                write!(f, "input exhausted in thread {tid} at {pc}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Details of a deadlock: the blocked threads and the wait-for edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// `(waiting thread, resource description, holding thread if any)`.
    pub edges: Vec<(ThreadId, String, Option<ThreadId>)>,
}

impl fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .edges
            .iter()
            .map(|(t, r, h)| match h {
                Some(h) => format!("T{} waits on {} held by T{}", t.0, r, h.0),
                None => format!("T{} waits on {}", t.0, r),
            })
            .collect();
        write!(f, "{}", parts.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BlockId, FuncId};

    fn pc() -> Pc {
        Pc {
            func: FuncId(0),
            block: BlockId(0),
            idx: 3,
        }
    }

    #[test]
    fn categories() {
        let e = VmError::DivisionByZero {
            tid: ThreadId(1),
            pc: pc(),
        };
        assert_eq!(e.category(), "div-by-zero");
        assert!(e.is_crash());
        let d = VmError::Deadlock(DeadlockInfo { edges: vec![] });
        assert!(!d.is_crash());
        assert_eq!(d.category(), "deadlock");
    }

    #[test]
    fn display_is_informative() {
        let e = VmError::OutOfBounds {
            tid: ThreadId(2),
            pc: pc(),
            alloc: "stats_array".to_string(),
            index: 32,
            len: 32,
        };
        let s = e.to_string();
        assert!(s.contains("stats_array"));
        assert!(s.contains("32"));
        assert_eq!(e.tid(), Some(ThreadId(2)));
        assert!(e.pc().is_some());
    }

    #[test]
    fn deadlock_display() {
        let d = DeadlockInfo {
            edges: vec![
                (ThreadId(0), "mutex m0".into(), Some(ThreadId(1))),
                (ThreadId(1), "mutex m1".into(), Some(ThreadId(0))),
            ],
        };
        let s = d.to_string();
        assert!(s.contains("T0 waits on mutex m0 held by T1"));
    }
}
