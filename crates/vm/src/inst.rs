//! The instruction set of the Portend virtual machine.
//!
//! The IR is register-based and deliberately small: it contains exactly the
//! constructs Portend's analyses need to observe — shared-memory accesses,
//! POSIX-style synchronization, thread management, I/O, and control flow.
//! It plays the role LLVM bitcode plays for the original Portend.

use std::fmt;

use portend_symex::{BinOp, CmpOp};

use crate::program::{AllocId, BlockId, FuncId, SyncId};

/// A virtual register index, local to a stack frame.
pub type Reg = u32;

/// An instruction operand: a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Read the value of a register.
    Reg(Reg),
    /// A literal constant.
    Imm(i64),
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst <- imm`
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant value.
        value: i64,
    },
    /// `dst <- src`
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst <- lhs op rhs` (wrapping 64-bit arithmetic).
    Bin {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst <- lhs op rhs` (0/1 result).
    Cmp {
        /// The comparison.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst <- (src == 0) ? 1 : 0`
    Not {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst <- mem[base][index]` — a shared-memory **read** (a potential
    /// racing access).
    Load {
        /// Destination register.
        dst: Reg,
        /// The accessed allocation.
        base: AllocId,
        /// Index within the allocation; must evaluate concrete.
        index: Operand,
    },
    /// `mem[base][index] <- src` — a shared-memory **write** (a potential
    /// racing access).
    Store {
        /// The accessed allocation.
        base: AllocId,
        /// Index within the allocation; must evaluate concrete.
        index: Operand,
        /// The stored value.
        src: Operand,
    },
    /// Unconditional jump within the current function.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch on the truthiness of `cond`. Branching on a
    /// symbolic condition is the multi-path fork point (paper §3.3).
    Branch {
        /// Branch condition.
        cond: Operand,
        /// Block taken when `cond != 0`.
        then_b: BlockId,
        /// Block taken when `cond == 0`.
        else_b: BlockId,
    },
    /// Function call; arguments are copied into the callee's first registers.
    Call {
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
        /// The callee.
        func: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// Return from the current function.
    Ret {
        /// Returned value, if any.
        value: Option<Operand>,
    },
    /// Spawn a new thread running `func(arg)`; `dst` receives the thread id.
    Spawn {
        /// Register receiving the new thread's id.
        dst: Reg,
        /// Thread entry function.
        func: FuncId,
        /// Single argument passed in the callee's `r0`.
        arg: Operand,
    },
    /// Block until the given thread exits (like `pthread_join`).
    Join {
        /// The joined thread id; must evaluate concrete.
        tid: Operand,
    },
    /// Acquire a mutex (like `pthread_mutex_lock`); blocks while held.
    MutexLock {
        /// The mutex.
        mutex: SyncId,
    },
    /// Release a mutex (like `pthread_mutex_unlock`).
    MutexUnlock {
        /// The mutex.
        mutex: SyncId,
    },
    /// Atomically release `mutex` and wait on `cond`
    /// (like `pthread_cond_wait`); re-acquires `mutex` before continuing.
    CondWait {
        /// The condition variable.
        cond: SyncId,
        /// The associated mutex; must be held.
        mutex: SyncId,
    },
    /// Wake one waiter (like `pthread_cond_signal`). Lost wakeups are
    /// possible by design, as with POSIX.
    CondSignal {
        /// The condition variable.
        cond: SyncId,
    },
    /// Wake all waiters (like `pthread_cond_broadcast`).
    CondBroadcast {
        /// The condition variable.
        cond: SyncId,
    },
    /// Wait at a barrier until its full party has arrived.
    BarrierWait {
        /// The barrier.
        barrier: SyncId,
    },
    /// Append a value to the program's output log (the VM's `write(2)`;
    /// paper §4 intercepts output system calls the same way).
    Output {
        /// File-descriptor-like channel (1 = stdout, 2 = stderr, ...).
        fd: i64,
        /// The emitted value.
        value: Operand,
    },
    /// Read the next value from the program input (symbolic in multi-path
    /// mode). Models `read(2)`, `getopt`, `gettimeofday`, ...
    Input {
        /// Destination register.
        dst: Reg,
    },
    /// Crash with `AssertFailed` when `cond` is zero. Used both for program
    /// assertions and for the "semantic property" checks of §5.1.
    Assert {
        /// The asserted condition.
        cond: Operand,
        /// Message reported on failure.
        msg: String,
    },
    /// A pure preemption point (models `sched_yield`/`usleep`).
    Yield,
    /// Mark an allocation dead; later accesses are use-after-free crashes.
    Free {
        /// The freed allocation.
        base: AllocId,
    },
    /// Do nothing.
    Nop,
}

impl Inst {
    /// Whether executing this instruction is a scheduler preemption point.
    ///
    /// Synchronization operations and `Yield` are always preemption points
    /// (paper §3.1: "Portend treats all POSIX threads synchronization
    /// primitives as possible preemption points"). Racing accesses become
    /// preemption points dynamically via watchpoints, not statically here.
    pub fn is_preemption_point(&self) -> bool {
        matches!(
            self,
            Inst::MutexLock { .. }
                | Inst::MutexUnlock { .. }
                | Inst::CondWait { .. }
                | Inst::CondSignal { .. }
                | Inst::CondBroadcast { .. }
                | Inst::BarrierWait { .. }
                | Inst::Join { .. }
                | Inst::Spawn { .. }
                | Inst::Yield
        )
    }

    /// The memory access this instruction performs, if any:
    /// `(allocation, index operand, is_write)`.
    pub fn memory_access(&self) -> Option<(AllocId, Operand, bool)> {
        match self {
            Inst::Load { base, index, .. } => Some((*base, *index, false)),
            Inst::Store { base, index, .. } => Some((*base, *index, true)),
            _ => None,
        }
    }

    /// The blocks control can transfer to when this instruction ends a
    /// basic block: both arms of a branch, the target of a jump, and
    /// nothing for a return. Non-terminators yield an empty list (control
    /// falls through to the next instruction in the block).
    pub fn terminator_targets(&self) -> Vec<BlockId> {
        match self {
            Inst::Jump { target } => vec![*target],
            Inst::Branch { then_b, else_b, .. } => vec![*then_b, *else_b],
            _ => Vec::new(),
        }
    }

    /// The function this instruction calls, if it is a [`Inst::Call`].
    /// Spawns are *not* call edges — the spawned function runs in a new
    /// thread (see [`Inst::spawn_target`]).
    pub fn callee(&self) -> Option<FuncId> {
        match self {
            Inst::Call { func, .. } => Some(*func),
            _ => None,
        }
    }

    /// The entry function of the thread this instruction spawns, if it
    /// is a [`Inst::Spawn`].
    pub fn spawn_target(&self) -> Option<FuncId> {
        match self {
            Inst::Spawn { func, .. } => Some(*func),
            _ => None,
        }
    }

    /// The mutex this instruction acquires when it completes: the lock
    /// of a [`Inst::MutexLock`], and the re-acquired mutex of a
    /// [`Inst::CondWait`] (POSIX `cond_wait` returns with the mutex
    /// held again).
    pub fn acquires_mutex(&self) -> Option<SyncId> {
        match self {
            Inst::MutexLock { mutex } => Some(*mutex),
            Inst::CondWait { mutex, .. } => Some(*mutex),
            _ => None,
        }
    }

    /// The mutex this instruction releases: the lock of a
    /// [`Inst::MutexUnlock`]. A [`Inst::CondWait`] releases its mutex
    /// too, but only *during* the wait — it holds the mutex again by the
    /// time the next instruction runs, so for a statement-level
    /// held-locks analysis it is not a release (see
    /// [`Inst::acquires_mutex`]).
    pub fn releases_mutex(&self) -> Option<SyncId> {
        match self {
            Inst::MutexUnlock { mutex } => Some(*mutex),
            _ => None,
        }
    }

    /// The barrier this instruction waits at, if it is a
    /// [`Inst::BarrierWait`].
    pub fn barrier(&self) -> Option<SyncId> {
        match self {
            Inst::BarrierWait { barrier } => Some(*barrier),
            _ => None,
        }
    }

    /// A short mnemonic for listings and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Const { .. } => "const",
            Inst::Copy { .. } => "copy",
            Inst::Bin { .. } => "bin",
            Inst::Cmp { .. } => "cmp",
            Inst::Not { .. } => "not",
            Inst::Load { .. } => "load",
            Inst::Store { .. } => "store",
            Inst::Jump { .. } => "jump",
            Inst::Branch { .. } => "branch",
            Inst::Call { .. } => "call",
            Inst::Ret { .. } => "ret",
            Inst::Spawn { .. } => "spawn",
            Inst::Join { .. } => "join",
            Inst::MutexLock { .. } => "lock",
            Inst::MutexUnlock { .. } => "unlock",
            Inst::CondWait { .. } => "cond-wait",
            Inst::CondSignal { .. } => "cond-signal",
            Inst::CondBroadcast { .. } => "cond-broadcast",
            Inst::BarrierWait { .. } => "barrier-wait",
            Inst::Output { .. } => "output",
            Inst::Input { .. } => "input",
            Inst::Assert { .. } => "assert",
            Inst::Yield => "yield",
            Inst::Free { .. } => "free",
            Inst::Nop => "nop",
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "r{dst} = const {value}"),
            Inst::Copy { dst, src } => write!(f, "r{dst} = {src}"),
            Inst::Bin { op, dst, lhs, rhs } => write!(f, "r{dst} = {op} {lhs}, {rhs}"),
            Inst::Cmp { op, dst, lhs, rhs } => write!(f, "r{dst} = cmp.{op} {lhs}, {rhs}"),
            Inst::Not { dst, src } => write!(f, "r{dst} = not {src}"),
            Inst::Load { dst, base, index } => write!(f, "r{dst} = load {base}[{index}]"),
            Inst::Store { base, index, src } => write!(f, "store {base}[{index}] = {src}"),
            Inst::Jump { target } => write!(f, "jump {target}"),
            Inst::Branch {
                cond,
                then_b,
                else_b,
            } => {
                write!(f, "branch {cond} ? {then_b} : {else_b}")
            }
            Inst::Call { dst, func, args } => {
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                match dst {
                    Some(d) => write!(f, "r{d} = call {func}({})", args.join(", ")),
                    None => write!(f, "call {func}({})", args.join(", ")),
                }
            }
            Inst::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Inst::Ret { value: None } => write!(f, "ret"),
            Inst::Spawn { dst, func, arg } => write!(f, "r{dst} = spawn {func}({arg})"),
            Inst::Join { tid } => write!(f, "join {tid}"),
            Inst::MutexLock { mutex } => write!(f, "lock {mutex}"),
            Inst::MutexUnlock { mutex } => write!(f, "unlock {mutex}"),
            Inst::CondWait { cond, mutex } => write!(f, "cond-wait {cond}, {mutex}"),
            Inst::CondSignal { cond } => write!(f, "cond-signal {cond}"),
            Inst::CondBroadcast { cond } => write!(f, "cond-broadcast {cond}"),
            Inst::BarrierWait { barrier } => write!(f, "barrier-wait {barrier}"),
            Inst::Output { fd, value } => write!(f, "output fd={fd} {value}"),
            Inst::Input { dst } => write!(f, "r{dst} = input"),
            Inst::Assert { cond, msg } => write!(f, "assert {cond} \"{msg}\""),
            Inst::Yield => write!(f, "yield"),
            Inst::Free { base } => write!(f, "free {base}"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preemption_points() {
        assert!(Inst::Yield.is_preemption_point());
        assert!(Inst::MutexLock { mutex: SyncId(0) }.is_preemption_point());
        assert!(!Inst::Nop.is_preemption_point());
        assert!(!Inst::Load {
            dst: 0,
            base: AllocId(0),
            index: Operand::Imm(0)
        }
        .is_preemption_point());
    }

    #[test]
    fn memory_access_extraction() {
        let ld = Inst::Load {
            dst: 1,
            base: AllocId(3),
            index: Operand::Imm(2),
        };
        assert_eq!(
            ld.memory_access(),
            Some((AllocId(3), Operand::Imm(2), false))
        );
        let st = Inst::Store {
            base: AllocId(3),
            index: Operand::Reg(1),
            src: Operand::Imm(9),
        };
        assert_eq!(
            st.memory_access(),
            Some((AllocId(3), Operand::Reg(1), true))
        );
        assert_eq!(Inst::Yield.memory_access(), None);
    }

    #[test]
    fn inspection_helpers() {
        let jump = Inst::Jump { target: BlockId(4) };
        assert_eq!(jump.terminator_targets(), vec![BlockId(4)]);
        let br = Inst::Branch {
            cond: Operand::Reg(0),
            then_b: BlockId(1),
            else_b: BlockId(2),
        };
        assert_eq!(br.terminator_targets(), vec![BlockId(1), BlockId(2)]);
        assert!(Inst::Ret { value: None }.terminator_targets().is_empty());
        assert!(Inst::Yield.terminator_targets().is_empty());

        let call = Inst::Call {
            dst: None,
            func: FuncId(7),
            args: vec![],
        };
        assert_eq!(call.callee(), Some(FuncId(7)));
        assert_eq!(call.spawn_target(), None);
        let spawn = Inst::Spawn {
            dst: 0,
            func: FuncId(8),
            arg: Operand::Imm(0),
        };
        assert_eq!(spawn.spawn_target(), Some(FuncId(8)));
        assert_eq!(spawn.callee(), None);

        let lock = Inst::MutexLock { mutex: SyncId(3) };
        assert_eq!(lock.acquires_mutex(), Some(SyncId(3)));
        assert_eq!(lock.releases_mutex(), None);
        let unlock = Inst::MutexUnlock { mutex: SyncId(3) };
        assert_eq!(unlock.releases_mutex(), Some(SyncId(3)));
        assert_eq!(unlock.acquires_mutex(), None);
        let wait = Inst::CondWait {
            cond: SyncId(0),
            mutex: SyncId(5),
        };
        assert_eq!(wait.acquires_mutex(), Some(SyncId(5)));
        assert_eq!(wait.releases_mutex(), None);
        let bar = Inst::BarrierWait { barrier: SyncId(2) };
        assert_eq!(bar.barrier(), Some(SyncId(2)));
        assert_eq!(lock.barrier(), None);
    }

    #[test]
    fn display_smoke() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: 2,
            lhs: Operand::Reg(1),
            rhs: Operand::Imm(5),
        };
        assert_eq!(i.to_string(), "r2 = add r1, 5");
        assert_eq!(i.mnemonic(), "bin");
    }
}
