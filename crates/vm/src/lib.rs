//! # portend-vm — a multi-threaded IR interpreter
//!
//! This crate is the reproduction's substitute for the Cloud9/KLEE
//! execution substrate of the original Portend (Kasikci, Zamfir, Candea —
//! ASPLOS 2012): a register-based IR with POSIX-style threads and
//! synchronization, executed by a cooperative single-processor scheduler
//! with explicit preemption points, checkpointing (machines are `Clone`),
//! watchpoints on shared-memory accesses, and hooks for race detectors.
//!
//! * [`ProgramBuilder`] / [`Program`] — authoring and validating programs;
//! * [`Machine`] — one execution state (memory, threads, sync, I/O, path
//!   condition); symbolic values fork at branches;
//! * [`exec::drive`] — the scheduling loop with budgets, suspension and
//!   watchpoints;
//! * [`Scheduler`] — cooperative / round-robin / seeded-random /
//!   trace-following policies;
//! * [`Monitor`] — the event interface race detectors implement.
//!
//! ## Example: run a racy program and observe its accesses
//!
//! ```
//! use portend_vm::{
//!     drive, DriveCfg, DriveStop, InputMode, InputSource, InputSpec, Machine,
//!     Operand, ProgramBuilder, RecordingMonitor, Scheduler, VmConfig,
//! };
//! use std::sync::Arc;
//!
//! let mut pb = ProgramBuilder::new("demo", "demo.c");
//! let counter = pb.global("counter", 0);
//! let worker = pb.func("worker", |f| {
//!     let _arg = f.param();
//!     f.racy_inc(counter, Operand::Imm(0));
//!     f.ret(None);
//! });
//! let main = pb.func("main", |f| {
//!     let t = f.spawn(worker, Operand::Imm(0));
//!     f.racy_inc(counter, Operand::Imm(0));
//!     f.join(t);
//!     f.ret(None);
//! });
//! let program = Arc::new(pb.build(main).expect("valid program"));
//!
//! let mut machine = Machine::new(
//!     program,
//!     InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
//!     VmConfig::default(),
//! );
//! let mut sched = Scheduler::random(1);
//! let mut mon = RecordingMonitor::default();
//! let stop = drive(&mut machine, &mut sched, &mut mon, &DriveCfg::default());
//! assert_eq!(stop, DriveStop::Completed);
//! assert_eq!(mon.accesses.len(), 4); // two racy load/store pairs
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod builder;
mod config;
mod cowlog;
mod error;
pub mod exec;
mod inst;
mod io;
mod machine;
mod mem;
mod monitor;
mod output;
mod program;
mod rng;
mod sched;
mod sync;
mod thread;
mod value;

pub use builder::{BuildError, FuncBuilder, ProgramBuilder};
pub use config::VmConfig;
pub use error::{DeadlockInfo, VmError};
pub use exec::{drive, run_to_completion, DriveCfg, DriveStop, Watch, WatchHit};
pub use inst::{Inst, Operand, Reg};
pub use io::{InputMode, InputSource, InputSpec, SymDomain};
pub use machine::{ForkCost, Machine, StepEvent};
pub use mem::{Allocation, Fnv, MemFault, Memory};
pub use monitor::{
    AccessEvent, Monitor, MonitorSet, NullMonitor, RecordingMonitor, SyncEvent, SyncEventKind,
    ThreadEvent, ThreadEventKind,
};
pub use output::{OutputLog, OutputRec};
pub use program::{
    AllocId, AllocSpec, BarrierSpec, BasicBlock, BlockId, FuncId, Function, Pc, Program, SyncId,
};
pub use rng::SmallRng;
pub use sched::{PickReason, SchedLog, Scheduler};
pub use sync::{BarrierState, CondState, MutexState, SyncState};
pub use thread::{Frame, ResumePhase, Thread, ThreadId, ThreadState};
pub use value::Val;
