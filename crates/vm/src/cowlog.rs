//! Shared storage for append-only, `Arc`-backed copy-on-write logs.
//!
//! [`OutputLog`](crate::OutputLog) and [`SchedLog`](crate::SchedLog)
//! follow the same discipline: cloning (part of every machine fork)
//! copies one pointer; the first append after a fork copies the items
//! once ([`Arc::make_mut`]), after which appends are owned; and the
//! bytes each instance lazily copied are tracked in a monotone
//! per-instance counter for fork-cost accounting. [`CowList`]
//! implements that invariant once so the two logs cannot drift.

use std::sync::Arc;

/// An append-only list with structural sharing and per-instance
/// copy-on-write byte accounting.
#[derive(Debug, Clone)]
pub(crate) struct CowList<T> {
    items: Arc<Vec<T>>,
    /// Bytes this instance copied on first-append-after-fork (monotone;
    /// carried by value across clones, so `cow_bytes() - base` is the
    /// copy work one execution segment performed).
    cow_bytes: u64,
}

// Manual impl: the derive would require `T: Default`, which the stored
// record types don't (and needn't) satisfy.
impl<T> Default for CowList<T> {
    fn default() -> Self {
        CowList {
            items: Arc::new(Vec::new()),
            cow_bytes: 0,
        }
    }
}

impl<T: PartialEq> PartialEq for CowList<T> {
    fn eq(&self, other: &Self) -> bool {
        // Accounting counters are not part of the list's value.
        self.items == other.items
    }
}

impl<T: Clone> CowList<T> {
    /// Appends an item, copying the shared storage first (and counting
    /// the copied bytes) when another instance still references it.
    pub fn push(&mut self, item: T) {
        if Arc::strong_count(&self.items) > 1 {
            self.cow_bytes += self.heap_bytes();
        }
        Arc::make_mut(&mut self.items).push(item);
    }

    /// The items as a slice, in append order.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Bytes a deep copy of the list would move; the cost a fork shares
    /// away structurally.
    pub fn heap_bytes(&self) -> u64 {
        (self.items.len() * std::mem::size_of::<T>()) as u64
    }

    /// Bytes this instance copied on-write since construction
    /// (monotone).
    pub fn cow_bytes(&self) -> u64 {
        self.cow_bytes
    }

    /// An eagerly deep-copied clone (no shared storage); the non-CoW
    /// reference for transparency tests and the fork microbench.
    pub fn deep_clone(&self) -> Self {
        CowList {
            items: Arc::new(self.items.as_ref().clone()),
            cow_bytes: self.cow_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_until_push_and_counts_bytes() {
        let mut a: CowList<u64> = CowList::default();
        a.push(1);
        a.push(2);
        let mut b = a.clone();
        assert_eq!(b.cow_bytes(), 0);
        b.push(3);
        assert_eq!(
            b.cow_bytes(),
            2 * std::mem::size_of::<u64>() as u64,
            "first post-fork append copies the pre-fork items"
        );
        assert_eq!(a.cow_bytes(), 0);
        assert_eq!(a.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert_eq!(a.deep_clone(), a);
        assert!(!a.is_empty());
        assert_eq!(b.len(), 3);
    }
}
