//! The VM's memory: named, bounds-checked allocations of 64-bit cells.
//!
//! Addresses are `(AllocId, offset)` pairs, which gives race reports stable
//! identities across runs (the paper clusters races by accessed location)
//! and makes every out-of-bounds or use-after-free access a detectable
//! crash, mirroring KLEE's memory-error detector inside Cloud9.

use std::fmt;

use crate::program::{AllocId, AllocSpec};
use crate::value::Val;

/// A memory access fault; the machine wraps it into a `VmError` with
/// thread and pc context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemFault {
    /// Index outside `0..len`.
    OutOfBounds {
        /// The out-of-range index.
        index: i64,
        /// The allocation's length.
        len: usize,
    },
    /// Access to a freed allocation.
    UseAfterFree,
    /// `Free` of an already-freed allocation.
    DoubleFree,
}

/// One allocation: a named run of cells plus liveness.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// The allocation's name, used in reports.
    pub name: String,
    /// The cell values.
    pub cells: Vec<Val>,
    /// Whether the allocation is still live (`Free` clears this).
    pub live: bool,
}

/// The whole memory of one execution state. Cloning a [`Memory`] is how
/// checkpoints capture the heap.
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    allocs: Vec<Allocation>,
}

impl Memory {
    /// Instantiates memory from the program's allocation specs.
    pub fn from_specs(specs: &[AllocSpec]) -> Self {
        let allocs = specs
            .iter()
            .map(|s| {
                let mut cells = vec![Val::C(0); s.len];
                for (i, &v) in s.init.iter().enumerate().take(s.len) {
                    cells[i] = Val::C(v);
                }
                Allocation {
                    name: s.name.clone(),
                    cells,
                    live: true,
                }
            })
            .collect();
        Memory { allocs }
    }

    /// Number of allocations.
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }

    /// Read-only view of an allocation.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn alloc(&self, id: AllocId) -> &Allocation {
        &self.allocs[id.0 as usize]
    }

    /// Loads `alloc[index]`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds or use-after-free accesses.
    pub fn load(&self, id: AllocId, index: i64) -> Result<Val, MemFault> {
        let a = &self.allocs[id.0 as usize];
        if !a.live {
            return Err(MemFault::UseAfterFree);
        }
        if index < 0 || index as usize >= a.cells.len() {
            return Err(MemFault::OutOfBounds {
                index,
                len: a.cells.len(),
            });
        }
        Ok(a.cells[index as usize].clone())
    }

    /// Stores `value` into `alloc[index]`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds or use-after-free accesses.
    pub fn store(&mut self, id: AllocId, index: i64, value: Val) -> Result<(), MemFault> {
        let a = &mut self.allocs[id.0 as usize];
        if !a.live {
            return Err(MemFault::UseAfterFree);
        }
        if index < 0 || index as usize >= a.cells.len() {
            return Err(MemFault::OutOfBounds {
                index,
                len: a.cells.len(),
            });
        }
        a.cells[index as usize] = value;
        Ok(())
    }

    /// Frees an allocation; later accesses fault.
    ///
    /// # Errors
    ///
    /// Fails when the allocation is already freed.
    pub fn free(&mut self, id: AllocId) -> Result<(), MemFault> {
        let a = &mut self.allocs[id.0 as usize];
        if !a.live {
            return Err(MemFault::DoubleFree);
        }
        a.live = false;
        Ok(())
    }

    /// A 64-bit fingerprint of all cell values, used by the
    /// Record/Replay-Analyzer baseline's post-race *state* comparison
    /// (paper §2.1/§5.2). Symbolic cells hash their printed form.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for a in &self.allocs {
            h.write_u64(a.live as u64);
            for c in &a.cells {
                match c.as_concrete() {
                    Some(v) => h.write_u64(v as u64),
                    None => h.write_str(&c.to_string()),
                }
            }
        }
        h.finish()
    }

    /// Cell-by-cell differences against another memory (same program),
    /// as `(allocation name, index, self value, other value)`.
    pub fn diff(&self, other: &Memory) -> Vec<(String, usize, Val, Val)> {
        let mut out = Vec::new();
        for (a, b) in self.allocs.iter().zip(&other.allocs) {
            for (i, (x, y)) in a.cells.iter().zip(&b.cells).enumerate() {
                if x != y {
                    out.push((a.name.clone(), i, x.clone(), y.clone()));
                }
            }
        }
        out
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.allocs {
            let vals: Vec<String> = a.cells.iter().map(|c| c.to_string()).collect();
            writeln!(
                f,
                "{}{}: [{}]",
                a.name,
                if a.live { "" } else { " (freed)" },
                vals.join(", ")
            )?;
        }
        Ok(())
    }
}

/// Minimal FNV-1a hasher (no external dependency needed).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher with the FNV offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    /// Mixes eight bytes.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Mixes a string.
    pub fn write_str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.write_u8(*b);
        }
        self.write_u8(0xff);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::from_specs(&[
            AllocSpec {
                name: "g".into(),
                len: 1,
                init: vec![7],
            },
            AllocSpec {
                name: "arr".into(),
                len: 4,
                init: vec![1, 2],
            },
        ])
    }

    #[test]
    fn init_values_zero_extended() {
        let m = mem();
        assert_eq!(m.load(AllocId(1), 0), Ok(Val::C(1)));
        assert_eq!(m.load(AllocId(1), 1), Ok(Val::C(2)));
        assert_eq!(m.load(AllocId(1), 2), Ok(Val::C(0)));
    }

    #[test]
    fn store_load_roundtrip() {
        let mut m = mem();
        m.store(AllocId(0), 0, Val::C(42)).unwrap();
        assert_eq!(m.load(AllocId(0), 0), Ok(Val::C(42)));
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut m = mem();
        assert_eq!(
            m.load(AllocId(1), 4),
            Err(MemFault::OutOfBounds { index: 4, len: 4 })
        );
        assert_eq!(
            m.store(AllocId(1), -1, Val::C(0)),
            Err(MemFault::OutOfBounds { index: -1, len: 4 })
        );
    }

    #[test]
    fn use_after_free_faults() {
        let mut m = mem();
        m.free(AllocId(0)).unwrap();
        assert_eq!(m.load(AllocId(0), 0), Err(MemFault::UseAfterFree));
        assert_eq!(
            m.store(AllocId(0), 0, Val::C(1)),
            Err(MemFault::UseAfterFree)
        );
        assert_eq!(m.free(AllocId(0)), Err(MemFault::DoubleFree));
    }

    #[test]
    fn fingerprint_tracks_state() {
        let mut a = mem();
        let b = mem();
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.store(AllocId(0), 0, Val::C(8)).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let d = a.diff(&b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, "g");
        assert_eq!(d[0].2, Val::C(8));
    }
}
