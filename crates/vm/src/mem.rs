//! The VM's memory: named, bounds-checked allocations of 64-bit cells.
//!
//! Addresses are `(AllocId, offset)` pairs, which gives race reports stable
//! identities across runs (the paper clusters races by accessed location)
//! and makes every out-of-bounds or use-after-free access a detectable
//! crash, mirroring KLEE's memory-error detector inside Cloud9.
//!
//! Storage is structurally shared: the allocation table is an
//! `Arc<Vec<Arc<Allocation>>>`, so cloning a [`Memory`] — how checkpoints
//! and the multi-path explorer's forks capture the heap — copies one
//! pointer instead of every cell. Mutation goes through
//! [`Arc::make_mut`], which copies an allocation only on the first write
//! after a fork (copy-on-write); until then parent and child share every
//! byte. The bytes each instance lazily copied this way are tracked in a
//! monotone per-instance counter ([`Memory::cow_bytes`]) so exploration
//! engines can attribute the deferred fork cost to the state that paid it.

use std::fmt;
use std::sync::Arc;

use crate::program::{AllocId, AllocSpec};
use crate::value::Val;

/// A memory access fault; the machine wraps it into a `VmError` with
/// thread and pc context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemFault {
    /// Index outside `0..len`.
    OutOfBounds {
        /// The out-of-range index.
        index: i64,
        /// The allocation's length.
        len: usize,
    },
    /// Access to a freed allocation.
    UseAfterFree,
    /// `Free` of an already-freed allocation.
    DoubleFree,
}

/// One allocation: a named run of cells plus liveness.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// The allocation's name, used in reports.
    pub name: String,
    /// The cell values.
    pub cells: Vec<Val>,
    /// Whether the allocation is still live (`Free` clears this).
    pub live: bool,
}

impl Allocation {
    /// Approximate bytes a deep copy of this allocation moves (cells,
    /// name, liveness flag). Used for fork-cost accounting.
    pub fn byte_size(&self) -> u64 {
        (self.cells.len() * std::mem::size_of::<Val>() + self.name.len() + 1) as u64
    }
}

/// The whole memory of one execution state. Cloning a [`Memory`] is how
/// checkpoints capture the heap — an O(1) pointer copy under the
/// copy-on-write sharing scheme (see the module docs).
#[derive(Debug, Clone)]
pub struct Memory {
    allocs: Arc<Vec<Arc<Allocation>>>,
    /// Bytes this instance lazily copied on first-write-after-fork
    /// (monotone; carried by value across clones, so `cow_bytes() - base`
    /// is the copy work one execution segment performed).
    cow_bytes: u64,
}

impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        // Accounting counters are not part of the memory's value.
        self.allocs == other.allocs
    }
}

impl Memory {
    /// Instantiates memory from the program's allocation specs.
    pub fn from_specs(specs: &[AllocSpec]) -> Self {
        let allocs = specs
            .iter()
            .map(|s| {
                let mut cells = vec![Val::C(0); s.len];
                for (i, &v) in s.init.iter().enumerate().take(s.len) {
                    cells[i] = Val::C(v);
                }
                Arc::new(Allocation {
                    name: s.name.clone(),
                    cells,
                    live: true,
                })
            })
            .collect();
        Memory {
            allocs: Arc::new(allocs),
            cow_bytes: 0,
        }
    }

    /// Number of allocations.
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }

    /// Read-only view of an allocation.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn alloc(&self, id: AllocId) -> &Allocation {
        &self.allocs[id.0 as usize]
    }

    /// Copy-on-write access to an allocation: shared storage is copied
    /// (and the copied bytes counted) before the mutable borrow is
    /// handed out.
    fn alloc_mut(&mut self, id: AllocId) -> &mut Allocation {
        let idx = id.0 as usize;
        if Arc::strong_count(&self.allocs) > 1 {
            // The spine (one `Arc` per allocation) un-shares first.
            self.cow_bytes += (self.allocs.len() * std::mem::size_of::<Arc<Allocation>>()) as u64;
        }
        let spine = Arc::make_mut(&mut self.allocs);
        if Arc::strong_count(&spine[idx]) > 1 {
            self.cow_bytes += spine[idx].byte_size();
        }
        Arc::make_mut(&mut spine[idx])
    }

    /// Loads `alloc[index]`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds or use-after-free accesses.
    pub fn load(&self, id: AllocId, index: i64) -> Result<Val, MemFault> {
        let a = &self.allocs[id.0 as usize];
        if !a.live {
            return Err(MemFault::UseAfterFree);
        }
        if index < 0 || index as usize >= a.cells.len() {
            return Err(MemFault::OutOfBounds {
                index,
                len: a.cells.len(),
            });
        }
        Ok(a.cells[index as usize].clone())
    }

    /// Stores `value` into `alloc[index]`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds or use-after-free accesses.
    pub fn store(&mut self, id: AllocId, index: i64, value: Val) -> Result<(), MemFault> {
        // Validate on the shared view first: faulting accesses must not
        // trigger a copy.
        let a = &self.allocs[id.0 as usize];
        if !a.live {
            return Err(MemFault::UseAfterFree);
        }
        if index < 0 || index as usize >= a.cells.len() {
            return Err(MemFault::OutOfBounds {
                index,
                len: a.cells.len(),
            });
        }
        self.alloc_mut(id).cells[index as usize] = value;
        Ok(())
    }

    /// Frees an allocation; later accesses fault.
    ///
    /// # Errors
    ///
    /// Fails when the allocation is already freed.
    pub fn free(&mut self, id: AllocId) -> Result<(), MemFault> {
        if !self.allocs[id.0 as usize].live {
            return Err(MemFault::DoubleFree);
        }
        self.alloc_mut(id).live = false;
        Ok(())
    }

    /// Total bytes a *deep* copy of this memory would move (all
    /// allocations plus the sharing spine): the heap cost a fork avoids
    /// by sharing structurally.
    pub fn heap_bytes(&self) -> u64 {
        let spine = (self.allocs.len() * std::mem::size_of::<Arc<Allocation>>()) as u64;
        spine + self.allocs.iter().map(|a| a.byte_size()).sum::<u64>()
    }

    /// Bytes this instance copied on-write since construction (monotone).
    pub fn cow_bytes(&self) -> u64 {
        self.cow_bytes
    }

    /// Whether this memory still shares its allocation table with
    /// `other` (no write has un-shared the spine since they forked).
    pub fn shares_storage_with(&self, other: &Memory) -> bool {
        Arc::ptr_eq(&self.allocs, &other.allocs)
    }

    /// An eagerly deep-copied clone: every allocation is copied now, no
    /// storage is shared. Behaviorally identical to `clone()` — used by
    /// the CoW-transparency property tests and the fork microbench as
    /// the "what a non-CoW fork would cost" reference.
    pub fn deep_clone(&self) -> Memory {
        Memory {
            allocs: Arc::new(
                self.allocs
                    .iter()
                    .map(|a| Arc::new(a.as_ref().clone()))
                    .collect(),
            ),
            cow_bytes: self.cow_bytes,
        }
    }

    /// A 64-bit fingerprint of all cell values, used by the
    /// Record/Replay-Analyzer baseline's post-race *state* comparison
    /// (paper §2.1/§5.2). Symbolic cells hash their printed form.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for a in self.allocs.iter() {
            h.write_u64(a.live as u64);
            for c in &a.cells {
                match c.as_concrete() {
                    Some(v) => h.write_u64(v as u64),
                    None => h.write_str(&c.to_string()),
                }
            }
        }
        h.finish()
    }

    /// Cell-by-cell differences against another memory (same program),
    /// as `(allocation name, index, self value, other value)`.
    pub fn diff(&self, other: &Memory) -> Vec<(String, usize, Val, Val)> {
        let mut out = Vec::new();
        for (a, b) in self.allocs.iter().zip(other.allocs.iter()) {
            for (i, (x, y)) in a.cells.iter().zip(&b.cells).enumerate() {
                if x != y {
                    out.push((a.name.clone(), i, x.clone(), y.clone()));
                }
            }
        }
        out
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in self.allocs.iter() {
            let vals: Vec<String> = a.cells.iter().map(|c| c.to_string()).collect();
            writeln!(
                f,
                "{}{}: [{}]",
                a.name,
                if a.live { "" } else { " (freed)" },
                vals.join(", ")
            )?;
        }
        Ok(())
    }
}

/// Minimal FNV-1a hasher (no external dependency needed).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher with the FNV offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    /// Mixes eight bytes.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Mixes a string.
    pub fn write_str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.write_u8(*b);
        }
        self.write_u8(0xff);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::from_specs(&[
            AllocSpec {
                name: "g".into(),
                len: 1,
                init: vec![7],
            },
            AllocSpec {
                name: "arr".into(),
                len: 4,
                init: vec![1, 2],
            },
        ])
    }

    #[test]
    fn init_values_zero_extended() {
        let m = mem();
        assert_eq!(m.load(AllocId(1), 0), Ok(Val::C(1)));
        assert_eq!(m.load(AllocId(1), 1), Ok(Val::C(2)));
        assert_eq!(m.load(AllocId(1), 2), Ok(Val::C(0)));
    }

    #[test]
    fn store_load_roundtrip() {
        let mut m = mem();
        m.store(AllocId(0), 0, Val::C(42)).unwrap();
        assert_eq!(m.load(AllocId(0), 0), Ok(Val::C(42)));
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut m = mem();
        assert_eq!(
            m.load(AllocId(1), 4),
            Err(MemFault::OutOfBounds { index: 4, len: 4 })
        );
        assert_eq!(
            m.store(AllocId(1), -1, Val::C(0)),
            Err(MemFault::OutOfBounds { index: -1, len: 4 })
        );
    }

    #[test]
    fn use_after_free_faults() {
        let mut m = mem();
        m.free(AllocId(0)).unwrap();
        assert_eq!(m.load(AllocId(0), 0), Err(MemFault::UseAfterFree));
        assert_eq!(
            m.store(AllocId(0), 0, Val::C(1)),
            Err(MemFault::UseAfterFree)
        );
        assert_eq!(m.free(AllocId(0)), Err(MemFault::DoubleFree));
    }

    #[test]
    fn fingerprint_tracks_state() {
        let mut a = mem();
        let b = mem();
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.store(AllocId(0), 0, Val::C(8)).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let d = a.diff(&b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, "g");
        assert_eq!(d[0].2, Val::C(8));
    }

    #[test]
    fn clone_shares_until_first_write() {
        let mut parent = mem();
        let mut child = parent.clone();
        assert!(child.shares_storage_with(&parent));
        assert_eq!(child.cow_bytes(), 0);

        // First write in the child copies the spine + the touched
        // allocation, nothing else; the parent is unaffected.
        child.store(AllocId(0), 0, Val::C(99)).unwrap();
        assert!(!child.shares_storage_with(&parent));
        assert!(child.cow_bytes() > 0);
        assert_eq!(parent.cow_bytes(), 0);
        assert_eq!(parent.load(AllocId(0), 0), Ok(Val::C(7)));
        assert_eq!(child.load(AllocId(0), 0), Ok(Val::C(99)));

        // The untouched allocation is still shared under the new spine;
        // a second write to the same allocation copies nothing more.
        let before = child.cow_bytes();
        child.store(AllocId(0), 0, Val::C(100)).unwrap();
        assert_eq!(child.cow_bytes(), before);

        // The parent's allocation 1 is still shared with the child's
        // spine, so the parent's first write to it copies it (and only
        // it — its own spine is unshared by now).
        parent.store(AllocId(1), 0, Val::C(5)).unwrap();
        let one_alloc = parent.alloc(AllocId(1)).byte_size();
        assert_eq!(parent.cow_bytes(), one_alloc);
        assert_eq!(child.load(AllocId(1), 0), Ok(Val::C(1)));

        // With no live fork at all, writes never count as CoW.
        let mut lone = mem();
        lone.store(AllocId(0), 0, Val::C(1)).unwrap();
        assert_eq!(lone.cow_bytes(), 0);
    }

    #[test]
    fn faulting_store_does_not_copy() {
        let parent = mem();
        let mut child = parent.clone();
        assert!(child.store(AllocId(1), 9, Val::C(0)).is_err());
        assert!(child.shares_storage_with(&parent));
        assert_eq!(child.cow_bytes(), 0);
    }

    #[test]
    fn deep_clone_equals_cow_clone() {
        let mut m = mem();
        m.store(AllocId(1), 3, Val::C(11)).unwrap();
        let cow = m.clone();
        let deep = m.deep_clone();
        assert_eq!(cow, deep);
        assert_eq!(cow.fingerprint(), deep.fingerprint());
        assert!(deep.diff(&cow).is_empty());
        assert!(!deep.shares_storage_with(&m));
        assert!(m.heap_bytes() > 0);
    }
}
