//! Program inputs: the recorded log of nondeterministic values, and the
//! symbolic-input configuration used during multi-path analysis.

use portend_symex::{Model, VarId, VarTable};

use crate::value::Val;

/// Domain declaration for one symbolic input position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymDomain {
    /// Variable name shown in reports (e.g. `"use_hash_table"`).
    pub name: String,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl SymDomain {
    /// Creates a domain declaration.
    pub fn new(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        SymDomain {
            name: name.into(),
            lo,
            hi,
        }
    }
}

/// The program's input specification: concrete recorded values plus the
/// positions treated as symbolic during multi-path analysis (paper §3.3:
/// "the number and size of symbolic inputs" is the second path-explosion
/// control).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputSpec {
    /// The concrete input log (covers every `Input` the program executes).
    pub values: Vec<i64>,
    /// Positions `0..symbolic.len()` become symbolic variables in
    /// [`InputMode::Symbolic`].
    pub symbolic: Vec<SymDomain>,
}

impl InputSpec {
    /// A fully concrete input spec.
    pub fn concrete(values: Vec<i64>) -> Self {
        InputSpec {
            values,
            symbolic: Vec::new(),
        }
    }

    /// Adds a symbolic domain for the next undeclared leading position.
    pub fn with_symbolic(mut self, dom: SymDomain) -> Self {
        self.symbolic.push(dom);
        self
    }
}

/// Whether `Input` instructions produce concrete or symbolic values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputMode {
    /// Replay the concrete log.
    Concrete,
    /// Make leading inputs symbolic per the spec.
    Symbolic,
}

/// The input source of one execution state. Cloned with the machine so
/// forked states keep independent cursors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSource {
    spec: InputSpec,
    mode: InputMode,
    cursor: usize,
    /// `(input position, symbolic variable)` pairs created so far.
    sym_vars: Vec<(usize, VarId)>,
}

impl InputSource {
    /// Creates an input source.
    pub fn new(spec: InputSpec, mode: InputMode) -> Self {
        InputSource {
            spec,
            mode,
            cursor: 0,
            sym_vars: Vec::new(),
        }
    }

    /// The active mode.
    pub fn mode(&self) -> InputMode {
        self.mode
    }

    /// The underlying specification.
    pub fn spec(&self) -> &InputSpec {
        &self.spec
    }

    /// Number of inputs consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// The symbolic variables introduced so far, as
    /// `(input position, var)`.
    pub fn sym_vars(&self) -> &[(usize, VarId)] {
        &self.sym_vars
    }

    /// Produces the next input value, registering a fresh symbolic
    /// variable when appropriate. Returns `None` when the concrete log is
    /// exhausted.
    pub fn next(&mut self, vars: &mut VarTable) -> Option<Val> {
        let pos = self.cursor;
        self.cursor += 1;
        if self.mode == InputMode::Symbolic {
            if let Some(dom) = self.spec.symbolic.get(pos) {
                let var = vars.fresh(dom.name.clone(), dom.lo, dom.hi);
                self.sym_vars.push((pos, var));
                return Some(Val::S(portend_symex::Expr::var(var)));
            }
        }
        self.spec.values.get(pos).copied().map(Val::C)
    }

    /// Concretizes the spec under a solver model: symbolic positions take
    /// their model value (or the domain low bound if unconstrained), other
    /// positions keep the recorded concrete value. The result is the input
    /// log for an *alternate* execution (paper §3.3).
    pub fn concretize(&self, model: &Model, vars: &VarTable) -> Vec<i64> {
        let mut values = self.spec.values.clone();
        // Ensure the vector covers every symbolic position.
        if values.len() < self.spec.symbolic.len() {
            values.resize(self.spec.symbolic.len(), 0);
        }
        for &(pos, var) in &self.sym_vars {
            let v = model.get(var).unwrap_or_else(|| vars.info(var).lo);
            if pos < values.len() {
                values[pos] = v;
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_mode_replays_log() {
        let mut vars = VarTable::new();
        let mut src = InputSource::new(InputSpec::concrete(vec![7, 8]), InputMode::Concrete);
        assert_eq!(src.next(&mut vars), Some(Val::C(7)));
        assert_eq!(src.next(&mut vars), Some(Val::C(8)));
        assert_eq!(src.next(&mut vars), None);
        assert_eq!(src.consumed(), 3);
    }

    #[test]
    fn symbolic_mode_symbolizes_leading_inputs() {
        let mut vars = VarTable::new();
        let spec = InputSpec::concrete(vec![7, 8]).with_symbolic(SymDomain::new("opt", 0, 1));
        let mut src = InputSource::new(spec, InputMode::Symbolic);
        let first = src.next(&mut vars).expect("has input");
        assert!(first.is_symbolic());
        assert_eq!(vars.info(src.sym_vars()[0].1).name, "opt");
        let second = src.next(&mut vars);
        assert_eq!(second, Some(Val::C(8)));
    }

    #[test]
    fn concretize_applies_model() {
        let mut vars = VarTable::new();
        let spec = InputSpec::concrete(vec![7, 8]).with_symbolic(SymDomain::new("opt", 0, 1));
        let mut src = InputSource::new(spec, InputMode::Symbolic);
        let _ = src.next(&mut vars);
        let mut m = Model::new();
        m.set(src.sym_vars()[0].1, 1);
        assert_eq!(src.concretize(&m, &vars), vec![1, 8]);
        // Unconstrained variable falls back to the domain low bound.
        let empty = Model::new();
        assert_eq!(src.concretize(&empty, &vars), vec![0, 8]);
    }
}
