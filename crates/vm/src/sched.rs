//! The cooperative single-processor scheduler (paper §3.1, §6).
//!
//! Scheduling decisions happen at *preemption points*: synchronization
//! operations, `Yield`, thread blocking/exit, and (dynamically) watched
//! racing accesses. The scheduler is a cloneable value so that forked
//! exploration states carry independent schedule positions — this is what
//! lets the multi-path explorer prune paths that diverge from a recorded
//! schedule trace (paper Fig. 5).

use std::sync::Arc;

use crate::cowlog::CowList;
use crate::rng::SmallRng;
use crate::thread::ThreadId;

/// Why the scheduler is being consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickReason {
    /// Execution is starting.
    Start,
    /// The current thread blocked or exited.
    Blocked,
    /// The current thread reached a preemption point.
    Preemption,
}

/// A thread scheduling policy.
///
/// All policies are deterministic given their initial value ([`Scheduler::Random`]
/// carries a seeded RNG), which is what makes replay exact.
#[derive(Debug, Clone, Default)]
pub enum Scheduler {
    /// Run the current thread until it blocks or exits; then pick the
    /// lowest-id runnable thread. This is the default for plain runs.
    #[default]
    Cooperative,
    /// Rotate through runnable threads at every preemption point.
    RoundRobin,
    /// Pick uniformly at random at every preemption point (used for
    /// multi-schedule analysis, paper §3.4).
    Random(SmallRng),
    /// Follow a recorded decision list; once exhausted or diverged, fall
    /// back to the inner policy.
    Trace {
        /// The recorded decisions, in consult order.
        trace: Arc<[ThreadId]>,
        /// Next decision index.
        pos: usize,
        /// Set when a decision could not be honored (the designated
        /// thread was not runnable). Multi-path exploration prunes states
        /// that diverge before the race (paper §3.3).
        diverged: bool,
        /// Policy used after the trace ends or diverges.
        fallback: Box<Scheduler>,
    },
}

/// The recorded schedule-decision log of one execution.
///
/// Append-only and `Arc`-backed (shared `CowList` storage): cloning
/// (part of every machine fork) copies one pointer; the first append
/// after a fork copies the decisions once (copy-on-write), tracked by
/// [`SchedLog::cow_bytes`] for fork-cost accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedLog {
    decisions: CowList<ThreadId>,
}

impl SchedLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a decision.
    pub fn push(&mut self, t: ThreadId) {
        self.decisions.push(t);
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether no decision was recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The decisions as a slice, in consult order.
    pub fn as_slice(&self) -> &[ThreadId] {
        self.decisions.as_slice()
    }

    /// The decisions as an owned vector (for replay evidence and
    /// [`Scheduler::follow`]).
    pub fn to_vec(&self) -> Vec<ThreadId> {
        self.decisions.as_slice().to_vec()
    }

    /// Bytes a deep copy of the log would move.
    pub fn heap_bytes(&self) -> u64 {
        self.decisions.heap_bytes()
    }

    /// Bytes this instance copied on-write since construction (monotone).
    pub fn cow_bytes(&self) -> u64 {
        self.decisions.cow_bytes()
    }

    /// An eagerly deep-copied clone (no shared storage).
    pub fn deep_clone(&self) -> SchedLog {
        SchedLog {
            decisions: self.decisions.deep_clone(),
        }
    }
}

impl Scheduler {
    /// A random scheduler with the given seed.
    pub fn random(seed: u64) -> Self {
        Scheduler::Random(SmallRng::seed_from_u64(seed))
    }

    /// A trace-following scheduler with a cooperative fallback.
    pub fn follow(trace: impl Into<Arc<[ThreadId]>>) -> Self {
        Scheduler::Trace {
            trace: trace.into(),
            pos: 0,
            diverged: false,
            fallback: Box::new(Scheduler::Cooperative),
        }
    }

    /// A trace-following scheduler with an explicit fallback.
    pub fn follow_with_fallback(trace: impl Into<Arc<[ThreadId]>>, fallback: Scheduler) -> Self {
        Scheduler::Trace {
            trace: trace.into(),
            pos: 0,
            diverged: false,
            fallback: Box::new(fallback),
        }
    }

    /// Whether a trace-following scheduler failed to honor a decision.
    /// Always `false` for other policies.
    pub fn diverged(&self) -> bool {
        match self {
            Scheduler::Trace { diverged, .. } => *diverged,
            _ => false,
        }
    }

    /// Whether a trace-following scheduler consumed its whole trace.
    pub fn trace_exhausted(&self) -> bool {
        match self {
            Scheduler::Trace { trace, pos, .. } => *pos >= trace.len(),
            _ => true,
        }
    }

    /// Picks the next thread to run.
    ///
    /// `schedulable` is non-empty and sorted ascending: the threads the
    /// executor may actually schedule (runnable and not suspended).
    /// `alive` additionally includes runnable-but-*suspended* threads.
    /// `current` is the thread that was running (it may not be runnable
    /// anymore).
    ///
    /// A trace-following scheduler distinguishes the two sets: a decision
    /// naming a *suspended* thread is retried later (the suspension is an
    /// analysis artifact — the trace "slips" and realigns once the thread
    /// is released), while a decision naming a blocked or finished thread
    /// is a genuine divergence from the recorded execution.
    ///
    /// # Panics
    ///
    /// Panics if `schedulable` is empty (the executor never does this).
    #[allow(clippy::only_used_in_recursion)] // `reason` is part of the policy API
    pub fn pick(
        &mut self,
        schedulable: &[ThreadId],
        alive: &[ThreadId],
        current: ThreadId,
        reason: PickReason,
    ) -> ThreadId {
        assert!(
            !schedulable.is_empty(),
            "scheduler consulted with no runnable thread"
        );
        match self {
            Scheduler::Cooperative => {
                if schedulable.contains(&current) {
                    current
                } else {
                    schedulable[0]
                }
            }
            Scheduler::RoundRobin => {
                // The first runnable thread with id greater than current,
                // wrapping around.
                schedulable
                    .iter()
                    .copied()
                    .find(|t| t.0 > current.0)
                    .unwrap_or(schedulable[0])
            }
            Scheduler::Random(rng) => {
                let i = rng.gen_index(schedulable.len());
                schedulable[i]
            }
            Scheduler::Trace {
                trace,
                pos,
                diverged,
                fallback,
            } => {
                if *diverged || *pos >= trace.len() {
                    return fallback.pick(schedulable, alive, current, reason);
                }
                let want = trace[*pos];
                if schedulable.contains(&want) {
                    *pos += 1;
                    want
                } else if alive.contains(&want) {
                    // Suspended by the analysis: slip without diverging.
                    fallback.pick(schedulable, alive, current, reason)
                } else {
                    *diverged = true;
                    fallback.pick(schedulable, alive, current, reason)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn cooperative_prefers_current() {
        let mut s = Scheduler::Cooperative;
        assert_eq!(
            s.pick(&[t(0), t(1)], &[t(0), t(1)], t(1), PickReason::Preemption),
            t(1)
        );
        assert_eq!(
            s.pick(&[t(0), t(2)], &[t(0), t(2)], t(1), PickReason::Blocked),
            t(0)
        );
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::RoundRobin;
        assert_eq!(
            s.pick(
                &[t(0), t(1), t(2)],
                &[t(0), t(1), t(2)],
                t(0),
                PickReason::Preemption
            ),
            t(1)
        );
        assert_eq!(
            s.pick(
                &[t(0), t(1), t(2)],
                &[t(0), t(1), t(2)],
                t(2),
                PickReason::Preemption
            ),
            t(0)
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = Scheduler::random(42);
        let mut b = Scheduler::random(42);
        for _ in 0..32 {
            let runnable = [t(0), t(1), t(2), t(3)];
            assert_eq!(
                a.pick(&runnable, &runnable, t(0), PickReason::Preemption),
                b.pick(&runnable, &runnable, t(0), PickReason::Preemption)
            );
        }
    }

    #[test]
    fn trace_follows_then_falls_back() {
        let mut s = Scheduler::follow(vec![t(1), t(0)]);
        assert_eq!(
            s.pick(&[t(0), t(1)], &[t(0), t(1)], t(0), PickReason::Preemption),
            t(1)
        );
        assert_eq!(
            s.pick(&[t(0), t(1)], &[t(0), t(1)], t(1), PickReason::Preemption),
            t(0)
        );
        assert!(s.trace_exhausted());
        assert!(!s.diverged());
        // Exhausted: cooperative fallback keeps the current thread.
        assert_eq!(
            s.pick(&[t(0), t(1)], &[t(0), t(1)], t(1), PickReason::Preemption),
            t(1)
        );
    }

    #[test]
    fn trace_divergence_is_flagged() {
        let mut s = Scheduler::follow(vec![t(5)]);
        let got = s.pick(&[t(0), t(1)], &[t(0), t(1)], t(0), PickReason::Preemption);
        assert_eq!(got, t(0));
        assert!(s.diverged());
    }

    #[test]
    fn cloned_scheduler_has_independent_position() {
        let mut a = Scheduler::follow(vec![t(1), t(0)]);
        let _ = a.pick(&[t(0), t(1)], &[t(0), t(1)], t(0), PickReason::Preemption);
        let mut b = a.clone();
        assert_eq!(
            a.pick(&[t(0), t(1)], &[t(0), t(1)], t(1), PickReason::Preemption),
            t(0)
        );
        assert_eq!(
            b.pick(&[t(0), t(1)], &[t(0), t(1)], t(1), PickReason::Preemption),
            t(0)
        );
    }
}
