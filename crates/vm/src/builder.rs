//! Fluent builders for [`Program`]s.
//!
//! The builder is the public authoring API the workload models use; it
//! plays the role a C compiler plays for the original Portend. Besides raw
//! instruction emission it offers structured control flow (`if_else`,
//! `while_loop`, `for_range`), scoped concurrency combinators
//! (`with_lock`, `phase`, `loop_phases`, `spawn_n`/`join_all`), and
//! concurrency idioms (racy increments, busy-wait loops) so workloads —
//! and the scenario conformance corpus in `portend-workloads` — read
//! close to the C snippets in the paper: a new labeled idiom is ~20
//! lines of chained builder calls.
//!
//! Statement emitters return `&mut Self`, so straight-line racy code
//! chains:
//!
//! ```
//! use portend_vm::{Operand, ProgramBuilder};
//! let mut pb = ProgramBuilder::new("chain", "chain.c");
//! let data = pb.global("data", 0);
//! let flag = pb.global("flag", 0);
//! let mu = pb.mutex("m");
//! let producer = pb.worker("producer", |f, _arg| {
//!     f.store(data, Operand::Imm(0), Operand::Imm(33))
//!         .store(flag, Operand::Imm(0), Operand::Imm(1))
//!         .with_lock(mu, |f| {
//!             f.yield_();
//!         });
//! });
//! let main = pb.func("main", |f| {
//!     let tids = f.spawn_n(producer, 2);
//!     f.join_all(&tids).output(1, Operand::Imm(0));
//! });
//! pb.build(main).expect("valid program");
//! ```
//!
//! Validation happens at build time and is *exhaustive*:
//! [`ProgramBuilder::build`] reports **every** authoring error
//! (undefined functions, unterminated blocks, zero-party barriers,
//! out-of-range references) in one [`BuildError`], not just the first.

use std::fmt;

use crate::inst::{Inst, Operand, Reg};
use crate::program::AllocId;
use crate::program::{
    AllocSpec, BarrierSpec, BasicBlock, BlockId, FuncId, Function, Program, SyncId,
};
use portend_symex::{BinOp, CmpOp};

/// Every validation failure [`ProgramBuilder::build`] found, in one
/// pass: undefined functions first, then [`Program::validate_all`]'s
/// structural errors in program order. DSL authoring mistakes surface
/// together instead of one `build` round-trip per mistake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    /// The individual error descriptions (at least one).
    pub errors: Vec<String>,
}

impl BuildError {
    /// Whether any of the collected errors mentions `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.errors.iter().any(|e| e.contains(needle))
    }

    /// Number of distinct errors collected.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// A `BuildError` always carries at least one error.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program failed validation ({} error(s)):",
            self.errors.len()
        )?;
        for e in &self.errors {
            writeln!(f, "  - {e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Program`]: declares globals, sync objects, and functions.
///
/// ```
/// use portend_vm::{ProgramBuilder, Operand};
/// let mut pb = ProgramBuilder::new("demo", "demo.c");
/// let g = pb.global("counter", 0);
/// let main = pb.func("main", |f| {
///     f.store(g, Operand::Imm(0), Operand::Imm(41));
///     let v = f.load(g, Operand::Imm(0));
///     let v1 = f.add(v, Operand::Imm(1));
///     f.output(1, v1);
///     f.ret(None);
/// });
/// let program = pb.build(main).expect("valid program");
/// assert_eq!(program.entry, main);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    source_name: String,
    funcs: Vec<Option<Function>>,
    func_names: Vec<String>,
    allocs: Vec<AllocSpec>,
    mutexes: Vec<String>,
    conds: Vec<String>,
    barriers: Vec<BarrierSpec>,
}

impl ProgramBuilder {
    /// Starts a new program with the given display and source names.
    pub fn new(name: impl Into<String>, source_name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            source_name: source_name.into(),
            ..Default::default()
        }
    }

    /// Declares a global scalar with an initial value.
    pub fn global(&mut self, name: impl Into<String>, init: i64) -> AllocId {
        let id = AllocId(self.allocs.len() as u32);
        self.allocs.push(AllocSpec {
            name: name.into(),
            len: 1,
            init: vec![init],
        });
        id
    }

    /// Declares a global array of `len` zero-initialized cells.
    pub fn array(&mut self, name: impl Into<String>, len: usize) -> AllocId {
        let id = AllocId(self.allocs.len() as u32);
        self.allocs.push(AllocSpec {
            name: name.into(),
            len,
            init: vec![],
        });
        id
    }

    /// Declares a global array with explicit initial values.
    pub fn array_init(&mut self, name: impl Into<String>, init: Vec<i64>) -> AllocId {
        let id = AllocId(self.allocs.len() as u32);
        self.allocs.push(AllocSpec {
            name: name.into(),
            len: init.len(),
            init,
        });
        id
    }

    /// Declares a mutex.
    pub fn mutex(&mut self, name: impl Into<String>) -> SyncId {
        let id = SyncId(self.mutexes.len() as u32);
        self.mutexes.push(name.into());
        id
    }

    /// Declares a condition variable.
    pub fn condvar(&mut self, name: impl Into<String>) -> SyncId {
        let id = SyncId(self.conds.len() as u32);
        self.conds.push(name.into());
        id
    }

    /// Declares a barrier released when `party` threads arrive.
    pub fn barrier(&mut self, name: impl Into<String>, party: u32) -> SyncId {
        let id = SyncId(self.barriers.len() as u32);
        self.barriers.push(BarrierSpec {
            name: name.into(),
            party,
        });
        id
    }

    /// Forward-declares a function so mutually recursive code can
    /// reference it; define it later with [`ProgramBuilder::define_func`].
    pub fn declare_func(&mut self, name: impl Into<String>) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(None);
        self.func_names.push(name.into());
        id
    }

    /// Defines a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function was already defined.
    pub fn define_func(&mut self, id: FuncId, body: impl FnOnce(&mut FuncBuilder)) {
        let mut fb = FuncBuilder::new(self.func_names[id.0 as usize].clone());
        body(&mut fb);
        let slot = &mut self.funcs[id.0 as usize];
        assert!(slot.is_none(), "function {id} defined twice");
        *slot = Some(fb.finish());
    }

    /// Declares and defines a function in one step.
    pub fn func(&mut self, name: impl Into<String>, body: impl FnOnce(&mut FuncBuilder)) -> FuncId {
        let id = self.declare_func(name);
        self.define_func(id, body);
        id
    }

    /// Declares and defines a parameterized worker: the function's
    /// single spawn argument is declared for you and handed to the body
    /// as an operand. The standard shape for `spawn`/[`FuncBuilder::spawn_n`]
    /// targets.
    pub fn worker(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut FuncBuilder, Operand),
    ) -> FuncId {
        self.func(name, |f| {
            let arg = f.param();
            body(f, arg);
        })
    }

    /// Finalizes and validates the program.
    ///
    /// # Errors
    ///
    /// Returns **all** authoring errors found in one pass — every
    /// undefined function, unterminated block, zero-party barrier, and
    /// out-of-range reference — as a [`BuildError`], so a DSL author
    /// fixes a batch per round-trip instead of one error at a time.
    pub fn build(self, entry: FuncId) -> Result<Program, BuildError> {
        let mut errors = Vec::new();
        let mut funcs = Vec::with_capacity(self.funcs.len());
        for (i, f) in self.funcs.into_iter().enumerate() {
            match f {
                Some(f) => funcs.push(f),
                None => {
                    errors.push(format!(
                        "function `{}` declared but not defined",
                        self.func_names[i]
                    ));
                    // A trivially valid placeholder keeps `FuncId`s
                    // aligned so the rest of the program still validates
                    // (and calls to the undefined function don't cascade
                    // into spurious out-of-range errors).
                    funcs.push(Function {
                        name: self.func_names[i].clone(),
                        blocks: vec![BasicBlock {
                            insts: vec![Inst::Ret { value: None }],
                            lines: vec![0],
                        }],
                        num_regs: 0,
                    });
                }
            }
        }
        let program = Program {
            name: self.name,
            source_name: self.source_name,
            funcs,
            allocs: self.allocs,
            mutexes: self.mutexes,
            conds: self.conds,
            barriers: self.barriers,
            entry,
        };
        errors.extend(program.validate_all());
        if errors.is_empty() {
            Ok(program)
        } else {
            Err(BuildError { errors })
        }
    }
}

/// Builds one function's body. Obtained through [`ProgramBuilder::func`].
#[derive(Debug)]
pub struct FuncBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
    cur: BlockId,
    next_reg: Reg,
    cur_line: u32,
}

impl FuncBuilder {
    fn new(name: String) -> Self {
        FuncBuilder {
            name,
            blocks: vec![BasicBlock::default()],
            cur: BlockId(0),
            next_reg: 0,
            cur_line: 0,
        }
    }

    fn finish(mut self) -> Function {
        // Implicit `ret` at the end of a fall-through function body.
        if !self.terminated() {
            self.emit(Inst::Ret { value: None });
        }
        Function {
            name: self.name,
            blocks: self.blocks,
            num_regs: self.next_reg,
        }
    }

    /// Sets the source line stamped onto subsequently emitted instructions.
    pub fn line(&mut self, line: u32) -> &mut Self {
        self.cur_line = line;
        self
    }

    /// Allocates a fresh register. `r0`, `r1`, ... hold call arguments on
    /// function entry, so call [`FuncBuilder::param`] first.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Declares the next function parameter and returns it as an operand.
    /// Parameters occupy registers `r0..` in declaration order.
    pub fn param(&mut self) -> Operand {
        Operand::Reg(self.fresh_reg())
    }

    /// Creates a new (empty) basic block without switching to it.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::default());
        id
    }

    /// Redirects emission to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// The block currently being emitted into.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Whether the current block already ends in a terminator.
    pub fn terminated(&self) -> bool {
        matches!(
            self.blocks[self.cur.0 as usize].insts.last(),
            Some(Inst::Jump { .. }) | Some(Inst::Branch { .. }) | Some(Inst::Ret { .. })
        )
    }

    /// Emits a raw instruction into the current block.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        let b = &mut self.blocks[self.cur.0 as usize];
        b.insts.push(inst);
        b.lines.push(self.cur_line);
        self
    }

    // ---- value-producing emitters ------------------------------------

    /// Loads `base[index]`, returning the destination as an operand.
    pub fn load(&mut self, base: AllocId, index: Operand) -> Operand {
        let dst = self.fresh_reg();
        self.emit(Inst::Load { dst, base, index });
        Operand::Reg(dst)
    }

    /// Stores `src` into `base[index]`.
    pub fn store(&mut self, base: AllocId, index: Operand, src: Operand) -> &mut Self {
        self.emit(Inst::Store { base, index, src })
    }

    /// Emits `lhs op rhs` into a fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Operand {
        let dst = self.fresh_reg();
        self.emit(Inst::Bin { op, dst, lhs, rhs });
        Operand::Reg(dst)
    }

    /// Wrapping addition.
    pub fn add(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// Emits a comparison into a fresh register.
    pub fn cmp(&mut self, op: CmpOp, lhs: Operand, rhs: Operand) -> Operand {
        let dst = self.fresh_reg();
        self.emit(Inst::Cmp { op, dst, lhs, rhs });
        Operand::Reg(dst)
    }

    /// Emits logical negation into a fresh register.
    pub fn not(&mut self, src: Operand) -> Operand {
        let dst = self.fresh_reg();
        self.emit(Inst::Not { dst, src });
        Operand::Reg(dst)
    }

    /// Copies an operand into a fresh register (useful to fix a value
    /// before a racing re-read).
    pub fn copy(&mut self, src: Operand) -> Operand {
        let dst = self.fresh_reg();
        self.emit(Inst::Copy { dst, src });
        Operand::Reg(dst)
    }

    /// Calls `func(args...)` and returns the result operand.
    pub fn call(&mut self, func: FuncId, args: &[Operand]) -> Operand {
        let dst = self.fresh_reg();
        self.emit(Inst::Call {
            dst: Some(dst),
            func,
            args: args.to_vec(),
        });
        Operand::Reg(dst)
    }

    /// Calls `func(args...)` discarding any result.
    pub fn call_void(&mut self, func: FuncId, args: &[Operand]) -> &mut Self {
        self.emit(Inst::Call {
            dst: None,
            func,
            args: args.to_vec(),
        })
    }

    /// Spawns a thread running `func(arg)` and returns its thread id.
    pub fn spawn(&mut self, func: FuncId, arg: Operand) -> Operand {
        let dst = self.fresh_reg();
        self.emit(Inst::Spawn { dst, func, arg });
        Operand::Reg(dst)
    }

    /// Reads the next program input.
    pub fn input(&mut self) -> Operand {
        let dst = self.fresh_reg();
        self.emit(Inst::Input { dst });
        Operand::Reg(dst)
    }

    // ---- statement emitters -------------------------------------------

    /// Joins a thread.
    pub fn join(&mut self, tid: Operand) -> &mut Self {
        self.emit(Inst::Join { tid })
    }

    /// Acquires a mutex.
    pub fn lock(&mut self, mutex: SyncId) -> &mut Self {
        self.emit(Inst::MutexLock { mutex })
    }

    /// Releases a mutex.
    pub fn unlock(&mut self, mutex: SyncId) -> &mut Self {
        self.emit(Inst::MutexUnlock { mutex })
    }

    /// Waits on a condition variable (releasing and re-acquiring `mutex`).
    pub fn cond_wait(&mut self, cond: SyncId, mutex: SyncId) -> &mut Self {
        self.emit(Inst::CondWait { cond, mutex })
    }

    /// Signals one waiter.
    pub fn cond_signal(&mut self, cond: SyncId) -> &mut Self {
        self.emit(Inst::CondSignal { cond })
    }

    /// Wakes all waiters.
    pub fn cond_broadcast(&mut self, cond: SyncId) -> &mut Self {
        self.emit(Inst::CondBroadcast { cond })
    }

    /// Waits at a barrier.
    pub fn barrier_wait(&mut self, barrier: SyncId) -> &mut Self {
        self.emit(Inst::BarrierWait { barrier })
    }

    /// Emits `value` on output channel `fd`.
    pub fn output(&mut self, fd: i64, value: Operand) -> &mut Self {
        self.emit(Inst::Output { fd, value })
    }

    /// Asserts that `cond` is non-zero.
    pub fn assert_true(&mut self, cond: Operand, msg: impl Into<String>) -> &mut Self {
        self.emit(Inst::Assert {
            cond,
            msg: msg.into(),
        })
    }

    /// Emits a scheduling point (`sched_yield`/`usleep`).
    pub fn yield_(&mut self) -> &mut Self {
        self.emit(Inst::Yield)
    }

    /// Frees an allocation (later accesses crash).
    pub fn free(&mut self, base: AllocId) -> &mut Self {
        self.emit(Inst::Free { base })
    }

    /// Returns from the function.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.emit(Inst::Ret { value });
    }

    /// Jumps to `target`.
    pub fn jump(&mut self, target: BlockId) {
        self.emit(Inst::Jump { target });
    }

    /// Branches on `cond`.
    pub fn branch(&mut self, cond: Operand, then_b: BlockId, else_b: BlockId) {
        self.emit(Inst::Branch {
            cond,
            then_b,
            else_b,
        });
    }

    // ---- structured control flow ---------------------------------------

    /// `if (cond) { then_f() } else { else_f() }`; emission continues in
    /// the merge block.
    pub fn if_else(
        &mut self,
        cond: Operand,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let tb = self.new_block();
        let eb = self.new_block();
        let mb = self.new_block();
        self.branch(cond, tb, eb);
        self.switch_to(tb);
        then_f(self);
        if !self.terminated() {
            self.jump(mb);
        }
        self.switch_to(eb);
        else_f(self);
        if !self.terminated() {
            self.jump(mb);
        }
        self.switch_to(mb);
        self
    }

    /// `if (cond) { then_f() }`; emission continues in the merge block.
    pub fn if_then(&mut self, cond: Operand, then_f: impl FnOnce(&mut Self)) -> &mut Self {
        self.if_else(cond, then_f, |_| {})
    }

    /// `while (cond_f()) { body() }`; `cond_f` is re-evaluated each
    /// iteration. Emission continues in the exit block.
    pub fn while_loop(
        &mut self,
        cond_f: impl FnOnce(&mut Self) -> Operand,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let head = self.new_block();
        let body_b = self.new_block();
        let exit = self.new_block();
        self.jump(head);
        self.switch_to(head);
        let c = cond_f(self);
        self.branch(c, body_b, exit);
        self.switch_to(body_b);
        body(self);
        if !self.terminated() {
            self.jump(head);
        }
        self.switch_to(exit);
        self
    }

    /// `for (i = 0; i < n; i++) { body(i) }` over a fresh counter register.
    pub fn for_range(&mut self, n: Operand, body: impl FnOnce(&mut Self, Operand)) -> &mut Self {
        let i = self.fresh_reg();
        self.emit(Inst::Const { dst: i, value: 0 });
        let iv = Operand::Reg(i);
        let mut body = Some(body);
        self.while_loop(
            |f| f.cmp(CmpOp::Lt, iv, n),
            |f| {
                (body.take().expect("loop body built once"))(f, iv);
                let next = f.add(iv, Operand::Imm(1));
                f.emit(Inst::Copy { dst: i, src: next });
            },
        )
    }

    // ---- concurrency combinators ----------------------------------------

    /// Scoped critical section: acquires `mutex`, runs `body`, releases.
    pub fn with_lock(&mut self, mutex: SyncId, body: impl FnOnce(&mut Self)) -> &mut Self {
        self.lock(mutex);
        body(self);
        self.unlock(mutex)
    }

    /// One phase of a barrier-synchronized computation: runs `body`,
    /// then waits at `barrier`.
    pub fn phase(&mut self, barrier: SyncId, body: impl FnOnce(&mut Self)) -> &mut Self {
        body(self);
        self.barrier_wait(barrier)
    }

    /// `n` barrier-delimited phases in a loop: each iteration runs
    /// `body(phase_index)` and then waits at `barrier`, reusing the
    /// *same* barrier across iterations (the classic barrier-reuse
    /// idiom).
    pub fn loop_phases(
        &mut self,
        barrier: SyncId,
        n: i64,
        body: impl FnOnce(&mut Self, Operand),
    ) -> &mut Self {
        let mut body = Some(body);
        self.for_range(Operand::Imm(n), |f, i| {
            (body.take().expect("phase body built once"))(f, i);
            f.barrier_wait(barrier);
        })
    }

    /// Spawns `n` threads running `func(i)` for `i` in `0..n` and
    /// returns their thread ids, ready for [`FuncBuilder::join_all`].
    pub fn spawn_n(&mut self, func: FuncId, n: i64) -> Vec<Operand> {
        (0..n).map(|i| self.spawn(func, Operand::Imm(i))).collect()
    }

    /// Joins every thread in `tids`, in order.
    pub fn join_all(&mut self, tids: &[Operand]) -> &mut Self {
        for &tid in tids {
            self.join(tid);
        }
        self
    }

    // ---- concurrency idioms ---------------------------------------------

    /// The racy `x++` pattern: load, add one, store, with no locking.
    pub fn racy_inc(&mut self, alloc: AllocId, index: Operand) -> &mut Self {
        let v = self.load(alloc, index);
        let v1 = self.add(v, Operand::Imm(1));
        self.store(alloc, index, v1)
    }

    /// Busy-wait (ad-hoc synchronization, paper §2.3 "single ordering"):
    /// `while (alloc[index] == val) usleep();`
    pub fn spin_while_eq(&mut self, alloc: AllocId, index: Operand, val: i64) -> &mut Self {
        self.while_loop(
            |f| {
                let v = f.load(alloc, index);
                f.cmp(CmpOp::Eq, v, Operand::Imm(val))
            },
            |f| {
                f.yield_();
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_minimal_program() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let g = pb.global("g", 7);
        let main = pb.func("main", |f| {
            let v = f.load(g, Operand::Imm(0));
            f.output(1, v);
            f.ret(None);
        });
        let p = pb.build(main).expect("valid");
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.allocs[0].init, vec![7]);
        assert_eq!(p.inst_count(), 3);
    }

    #[test]
    fn undefined_function_is_an_error() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let id = pb.declare_func("ghost");
        assert!(pb.build(id).unwrap_err().contains("ghost"));
    }

    #[test]
    fn implicit_ret_added() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let main = pb.func("main", |f| {
            f.yield_();
        });
        let p = pb.build(main).expect("valid");
        assert!(matches!(
            p.funcs[0].blocks[0].insts.last(),
            Some(Inst::Ret { value: None })
        ));
    }

    #[test]
    fn if_else_produces_valid_blocks() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let g = pb.global("g", 0);
        let main = pb.func("main", |f| {
            let c = f.load(g, Operand::Imm(0));
            f.if_else(
                c,
                |f| {
                    f.output(1, Operand::Imm(1));
                },
                |f| {
                    f.output(1, Operand::Imm(2));
                },
            );
            f.ret(None);
        });
        let p = pb.build(main).expect("valid");
        assert_eq!(p.funcs[0].blocks.len(), 4);
    }

    #[test]
    fn while_loop_and_for_range_validate() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let g = pb.global("g", 0);
        let main = pb.func("main", |f| {
            f.for_range(Operand::Imm(4), |f, i| {
                f.store(g, Operand::Imm(0), i);
            });
            f.spin_while_eq(g, Operand::Imm(0), 99);
            f.ret(None);
        });
        pb.build(main).expect("valid");
    }

    #[test]
    fn build_reports_all_errors_in_one_pass() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let ghost = pb.declare_func("ghost");
        let bar = pb.barrier("b0", 0);
        let main = pb.func("main", |f| {
            let entry = f.current_block();
            let dangling = f.new_block();
            f.call_void(ghost, &[]).barrier_wait(bar).jump(dangling);
            f.switch_to(dangling);
            f.yield_();
            // Leave `dangling` unterminated: switch back so `finish`
            // doesn't append its implicit ret there.
            f.switch_to(entry);
        });
        let err = pb.build(main).unwrap_err();
        assert_eq!(err.len(), 3, "{err}");
        assert!(!err.is_empty());
        assert!(err.contains("`ghost` declared but not defined"), "{err}");
        assert!(err.contains("zero parties"), "{err}");
        assert!(err.contains("does not end in jump/branch/ret"), "{err}");
        let rendered = err.to_string();
        assert!(rendered.contains("3 error(s)"), "{rendered}");
    }

    #[test]
    fn combinators_chain_and_validate() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let g = pb.global("g", 0);
        let mu = pb.mutex("m");
        let bar = pb.barrier("b", 2);
        let w = pb.worker("w", |f, arg| {
            f.with_lock(mu, |f| {
                f.store(g, Operand::Imm(0), arg);
            })
            .loop_phases(bar, 2, |f, i| {
                f.output(1, i);
            })
            .ret(None);
        });
        let main = pb.func("main", |f| {
            let tids = f.spawn_n(w, 2);
            f.join_all(&tids).output(1, Operand::Imm(0));
        });
        let p = pb.build(main).expect("valid");
        assert_eq!(p.funcs.len(), 2);
        // with_lock wraps the store in a lock/unlock pair.
        let w_insts: Vec<_> = p.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .collect();
        assert!(w_insts.iter().any(|i| matches!(i, Inst::MutexLock { .. })));
        assert!(w_insts
            .iter()
            .any(|i| matches!(i, Inst::MutexUnlock { .. })));
        assert!(w_insts
            .iter()
            .any(|i| matches!(i, Inst::BarrierWait { .. })));
        // spawn_n/join_all spawn and join two workers.
        let m_insts: Vec<_> = p.funcs[1]
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .collect();
        assert_eq!(
            m_insts
                .iter()
                .filter(|i| matches!(i, Inst::Spawn { .. }))
                .count(),
            2
        );
        assert_eq!(
            m_insts
                .iter()
                .filter(|i| matches!(i, Inst::Join { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn double_definition_panics() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let id = pb.declare_func("f");
        pb.define_func(id, |f| f.ret(None));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pb.define_func(id, |f| f.ret(None));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn line_numbers_are_stamped() {
        let mut pb = ProgramBuilder::new("t", "t.c");
        let main = pb.func("main", |f| {
            f.line(42).yield_();
            f.ret(None);
        });
        let p = pb.build(main).expect("valid");
        assert_eq!(p.funcs[0].blocks[0].lines[0], 42);
    }
}
