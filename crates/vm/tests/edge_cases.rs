//! VM edge cases: synchronization corner behavior, watch filters, I/O
//! exhaustion, call stacks, and executor alignment guarantees.

use std::sync::Arc;

use portend_symex::CmpOp;
use portend_vm::{
    drive, DriveCfg, DriveStop, InputMode, InputSource, InputSpec, Machine, NullMonitor, Operand,
    Program, ProgramBuilder, RecordingMonitor, Scheduler, SyncEventKind, ThreadId, VmConfig,
    VmError, Watch,
};

fn boot(p: Program, inputs: Vec<i64>) -> Machine {
    Machine::new(
        Arc::new(p),
        InputSource::new(InputSpec::concrete(inputs), InputMode::Concrete),
        VmConfig::default(),
    )
}

fn run(m: &mut Machine, sched: &mut Scheduler) -> DriveStop {
    let mut mon = NullMonitor;
    drive(m, sched, &mut mon, &DriveCfg::default())
}

#[test]
fn barrier_with_party_one_is_a_no_op() {
    let mut pb = ProgramBuilder::new("b1", "b1.c");
    let bar = pb.barrier("solo", 1);
    let main = pb.func("main", |f| {
        f.barrier_wait(bar);
        f.output(1, Operand::Imm(1));
        f.ret(None);
    });
    let mut m = boot(pb.build(main).unwrap(), vec![]);
    assert_eq!(
        run(&mut m, &mut Scheduler::Cooperative),
        DriveStop::Completed
    );
    assert_eq!(m.output.concrete_values(), Some(vec![1]));
}

#[test]
fn cond_broadcast_wakes_all_waiters() {
    let mut pb = ProgramBuilder::new("bc", "bc.c");
    let g = pb.global("go", 0);
    let woken = pb.global("woken", 0);
    let mu = pb.mutex("m");
    let cv = pb.condvar("c");
    let waiter = pb.func("waiter", |f| {
        let _ = f.param();
        f.lock(mu);
        f.while_loop(
            |f| {
                let v = f.load(g, Operand::Imm(0));
                f.cmp(CmpOp::Eq, v, Operand::Imm(0))
            },
            |f| {
                f.cond_wait(cv, mu);
            },
        );
        f.racy_inc(woken, Operand::Imm(0));
        f.unlock(mu);
        f.ret(None);
    });
    let main = pb.func("main", |f| {
        let t1 = f.spawn(waiter, Operand::Imm(0));
        let t2 = f.spawn(waiter, Operand::Imm(1));
        let t3 = f.spawn(waiter, Operand::Imm(2));
        // Let all three block first.
        for _ in 0..30 {
            f.yield_();
        }
        f.lock(mu);
        f.store(g, Operand::Imm(0), Operand::Imm(1));
        f.cond_broadcast(cv);
        f.unlock(mu);
        f.join(t1);
        f.join(t2);
        f.join(t3);
        let v = f.load(woken, Operand::Imm(0));
        f.output(1, v);
        f.ret(None);
    });
    let p = pb.build(main).unwrap();
    for seed in 0..6 {
        let mut m = boot(p.clone(), vec![]);
        let stop = run(&mut m, &mut Scheduler::random(seed));
        assert_eq!(stop, DriveStop::Completed, "seed {seed}");
        assert_eq!(m.output.concrete_values(), Some(vec![3]), "seed {seed}");
    }
}

#[test]
fn lost_signal_then_flag_prevents_deadlock() {
    // A signal with no waiter is lost (POSIX semantics); the predicate
    // loop re-checks the flag so the waiter does not sleep forever.
    let mut pb = ProgramBuilder::new("ls", "ls.c");
    let g = pb.global("ready", 0);
    let mu = pb.mutex("m");
    let cv = pb.condvar("c");
    let signaler = pb.func("signaler", |f| {
        let _ = f.param();
        f.lock(mu);
        f.store(g, Operand::Imm(0), Operand::Imm(1));
        f.cond_signal(cv); // may fire before anyone waits
        f.unlock(mu);
        f.ret(None);
    });
    let main = pb.func("main", |f| {
        let t = f.spawn(signaler, Operand::Imm(0));
        for _ in 0..10 {
            f.yield_(); // let the signal get lost
        }
        f.lock(mu);
        f.while_loop(
            |f| {
                let v = f.load(g, Operand::Imm(0));
                f.cmp(CmpOp::Eq, v, Operand::Imm(0))
            },
            |f| {
                f.cond_wait(cv, mu);
            },
        );
        f.unlock(mu);
        f.join(t);
        f.output(1, Operand::Imm(7));
        f.ret(None);
    });
    let mut m = boot(pb.build(main).unwrap(), vec![]);
    assert_eq!(
        run(&mut m, &mut Scheduler::RoundRobin),
        DriveStop::Completed
    );
}

#[test]
fn join_of_already_finished_thread_succeeds() {
    let mut pb = ProgramBuilder::new("jf", "jf.c");
    let worker = pb.func("worker", |f| {
        let _ = f.param();
        f.ret(None);
    });
    let main = pb.func("main", |f| {
        let t = f.spawn(worker, Operand::Imm(0));
        for _ in 0..10 {
            f.yield_();
        }
        f.join(t); // worker exited long ago
        f.output(1, Operand::Imm(1));
        f.ret(None);
    });
    let mut m = boot(pb.build(main).unwrap(), vec![]);
    assert_eq!(
        run(&mut m, &mut Scheduler::RoundRobin),
        DriveStop::Completed
    );
}

#[test]
fn input_exhaustion_is_a_crash() {
    let mut pb = ProgramBuilder::new("ix", "ix.c");
    let main = pb.func("main", |f| {
        let a = f.input();
        let b = f.input(); // only one input provided
        let s = f.add(a, b);
        f.output(1, s);
        f.ret(None);
    });
    let mut m = boot(pb.build(main).unwrap(), vec![5]);
    match run(&mut m, &mut Scheduler::Cooperative) {
        DriveStop::Error(VmError::InputExhausted { .. }) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn unlock_without_lock_is_sync_misuse() {
    let mut pb = ProgramBuilder::new("um", "um.c");
    let mu = pb.mutex("m");
    let main = pb.func("main", |f| {
        f.unlock(mu);
        f.ret(None);
    });
    let mut m = boot(pb.build(main).unwrap(), vec![]);
    match run(&mut m, &mut Scheduler::Cooperative) {
        DriveStop::Error(VmError::SyncMisuse { .. }) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn relocking_a_held_mutex_is_sync_misuse() {
    let mut pb = ProgramBuilder::new("rl", "rl.c");
    let mu = pb.mutex("m");
    let main = pb.func("main", |f| {
        f.lock(mu);
        f.lock(mu);
        f.ret(None);
    });
    let mut m = boot(pb.build(main).unwrap(), vec![]);
    match run(&mut m, &mut Scheduler::Cooperative) {
        DriveStop::Error(VmError::SyncMisuse { .. }) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn watch_filters_by_thread_and_write() {
    let mut pb = ProgramBuilder::new("wf", "wf.c");
    let g = pb.global("g", 0);
    let worker = pb.func("worker", |f| {
        let _ = f.param();
        let _v = f.load(g, Operand::Imm(0)); // read by T1
        f.ret(None);
    });
    let main = pb.func("main", |f| {
        let t = f.spawn(worker, Operand::Imm(0));
        f.join(t);
        f.store(g, Operand::Imm(0), Operand::Imm(1)); // write by T0
        f.ret(None);
    });
    let program = Arc::new(pb.build(main).unwrap());
    // Writes-only watch skips T1's read and stops at T0's write.
    let mut m = Machine::new(
        Arc::clone(&program),
        InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
        VmConfig::default(),
    );
    let mut sched = Scheduler::Cooperative;
    let mut mon = NullMonitor;
    let cfg = DriveCfg {
        watches: vec![Watch {
            alloc: portend_vm::AllocId(0),
            offset: Some(0),
            tid: None,
            writes_only: true,
        }],
        ..Default::default()
    };
    match drive(&mut m, &mut sched, &mut mon, &cfg) {
        DriveStop::WatchHit(h) => {
            assert!(h.is_write);
            assert_eq!(h.tid, ThreadId(0));
        }
        other => panic!("{other:?}"),
    }
    // Thread-filtered watch stops only for T1.
    let mut m = Machine::new(
        program,
        InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
        VmConfig::default(),
    );
    let mut sched = Scheduler::Cooperative;
    let cfg = DriveCfg {
        watches: vec![Watch::cell(portend_vm::AllocId(0), 0).by(ThreadId(1))],
        ..Default::default()
    };
    match drive(&mut m, &mut sched, &mut mon, &cfg) {
        DriveStop::WatchHit(h) => assert_eq!(h.tid, ThreadId(1)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn nested_calls_return_through_frames() {
    let mut pb = ProgramBuilder::new("nc", "nc.c");
    let add1 = pb.func("add1", |f| {
        let x = f.param();
        let v = f.add(x, Operand::Imm(1));
        f.ret(Some(v));
    });
    let add2 = pb.func("add2", |f| {
        let x = f.param();
        let v = f.call(add1, &[x]);
        let v = f.call(add1, &[v]);
        f.ret(Some(v));
    });
    let main = pb.func("main", |f| {
        let v = f.call(add2, &[Operand::Imm(40)]);
        f.output(1, v);
        f.ret(None);
    });
    let mut m = boot(pb.build(main).unwrap(), vec![]);
    assert_eq!(
        run(&mut m, &mut Scheduler::Cooperative),
        DriveStop::Completed
    );
    assert_eq!(m.output.concrete_values(), Some(vec![42]));
}

#[test]
fn runaway_recursion_hits_depth_limit() {
    let mut pb = ProgramBuilder::new("rr", "rr.c");
    let f_id = pb.declare_func("forever");
    pb.define_func(f_id, |f| {
        f.call_void(f_id, &[]);
        f.ret(None);
    });
    let main = pb.func("main", |f| {
        f.call_void(f_id, &[]);
        f.ret(None);
    });
    let mut m = boot(pb.build(main).unwrap(), vec![]);
    match run(&mut m, &mut Scheduler::Cooperative) {
        DriveStop::Error(VmError::AssertFailed { msg, .. }) => {
            assert!(msg.contains("call depth"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn monitor_sees_barrier_and_cond_events() {
    let mut pb = ProgramBuilder::new("ev", "ev.c");
    let bar = pb.barrier("b", 2);
    let worker = pb.func("worker", |f| {
        let _ = f.param();
        f.barrier_wait(bar);
        f.ret(None);
    });
    let main = pb.func("main", |f| {
        let t = f.spawn(worker, Operand::Imm(0));
        f.barrier_wait(bar);
        f.join(t);
        f.ret(None);
    });
    let mut m = boot(pb.build(main).unwrap(), vec![]);
    let mut mon = RecordingMonitor::default();
    let mut sched = Scheduler::RoundRobin;
    let stop = drive(&mut m, &mut sched, &mut mon, &DriveCfg::default());
    assert_eq!(stop, DriveStop::Completed);
    assert!(mon.syncs.iter().any(
        |s| matches!(&s.kind, SyncEventKind::BarrierReleased { participants, .. }
            if participants.len() == 2)
    ));
}

#[test]
fn preempt_watches_do_not_change_results_only_interleavings() {
    // With a deterministic scheduler, adding preemption opportunities at
    // a cell changes which interleaving runs, but the program still
    // completes with a legal result.
    let mut pb = ProgramBuilder::new("pw", "pw.c");
    let g = pb.global("g", 0);
    let worker = pb.func("worker", |f| {
        let _ = f.param();
        f.racy_inc(g, Operand::Imm(0));
        f.ret(None);
    });
    let main = pb.func("main", |f| {
        let t = f.spawn(worker, Operand::Imm(0));
        f.racy_inc(g, Operand::Imm(0));
        f.join(t);
        let v = f.load(g, Operand::Imm(0));
        f.output(1, v);
        f.ret(None);
    });
    let program = Arc::new(pb.build(main).unwrap());
    let mut m = Machine::new(
        Arc::clone(&program),
        InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
        VmConfig::default(),
    );
    let mut sched = Scheduler::RoundRobin;
    let mut mon = NullMonitor;
    let cfg = DriveCfg {
        preempt_watches: vec![Watch::cell(portend_vm::AllocId(0), 0)],
        ..Default::default()
    };
    let stop = drive(&mut m, &mut sched, &mut mon, &cfg);
    assert_eq!(stop, DriveStop::Completed);
    let v = m.output.concrete_values().unwrap()[0];
    assert!(v == 1 || v == 2, "lost-update envelope: {v}");
}

#[test]
fn sym_branch_event_reaches_caller_in_symbolic_mode() {
    let mut pb = ProgramBuilder::new("sb", "sb.c");
    let main = pb.func("main", |f| {
        let x = f.input();
        f.if_else(
            x,
            |f| {
                f.output(1, Operand::Imm(1));
            },
            |f| {
                f.output(1, Operand::Imm(0));
            },
        );
        f.ret(None);
    });
    let program = Arc::new(pb.build(main).unwrap());
    let spec = InputSpec::concrete(vec![0]).with_symbolic(portend_vm::SymDomain::new("x", 0, 1));
    let mut m = Machine::new(
        program,
        InputSource::new(spec, InputMode::Symbolic),
        VmConfig::default(),
    );
    let mut sched = Scheduler::Cooperative;
    let mut mon = NullMonitor;
    match drive(&mut m, &mut sched, &mut mon, &DriveCfg::default()) {
        DriveStop::SymBranch {
            cond,
            then_b,
            else_b,
        } => {
            assert_ne!(then_b, else_b);
            // Resolve the false side and finish.
            m.apply_branch(else_b, cond.not());
            let stop = drive(&mut m, &mut sched, &mut mon, &DriveCfg::default());
            assert_eq!(stop, DriveStop::Completed);
            assert_eq!(m.output.concrete_values(), Some(vec![0]));
            assert_eq!(m.path.len(), 1);
        }
        other => panic!("{other:?}"),
    }
}
