//! Randomized property tests on the happens-before detector: soundness
//! (no reports for synchronization-disciplined programs under any
//! schedule) and completeness (one distinct race per unprotected cell).
//!
//! Driven by the workspace's own deterministic PRNG
//! ([`portend_vm::SmallRng`]); every case derives from a fixed seed, so
//! failures reproduce exactly without an external property-testing crate.

use std::sync::Arc;

use portend_race::{cluster_races, DetectorConfig, HbDetector};
use portend_vm::{
    drive, DriveCfg, InputMode, InputSource, InputSpec, Machine, Operand, ProgramBuilder,
    Scheduler, SmallRng, VmConfig,
};

/// Builds a program with `protected.len()` shared cells; cell `i` is
/// protected by a mutex iff `protected[i]`. Two workers increment every
/// cell.
fn build_program(protected: &[bool]) -> Arc<portend_vm::Program> {
    let mut pb = ProgramBuilder::new("gen", "gen.c");
    let cells: Vec<_> = protected
        .iter()
        .enumerate()
        .map(|(i, _)| pb.global(format!("cell{i}"), 0))
        .collect();
    let mu = pb.mutex("m");
    let prot = protected.to_vec();
    let cells_w = cells.clone();
    let worker = pb.func("worker", move |f| {
        let _ = f.param();
        for (i, &cell) in cells_w.iter().enumerate() {
            if prot[i] {
                f.lock(mu);
            }
            f.racy_inc(cell, Operand::Imm(0));
            if prot[i] {
                f.unlock(mu);
            } else {
                f.yield_();
            }
        }
        f.ret(None);
    });
    let main = pb.func("main", move |f| {
        let t1 = f.spawn(worker, Operand::Imm(0));
        let t2 = f.spawn(worker, Operand::Imm(1));
        f.join(t1);
        f.join(t2);
        f.ret(None);
    });
    Arc::new(pb.build(main).unwrap())
}

/// A random protection mask of 1..=4 cells.
fn gen_mask(r: &mut SmallRng) -> Vec<bool> {
    let len = 1 + r.gen_index(4);
    (0..len).map(|_| r.gen_index(2) == 1).collect()
}

fn detect(program: &Arc<portend_vm::Program>, seed: u64) -> Vec<portend_race::RaceCluster> {
    let mut m = Machine::new(
        Arc::clone(program),
        InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
        VmConfig::default(),
    );
    let mut det = HbDetector::with_config(DetectorConfig::default());
    det.set_alloc_names(program.allocs.iter().map(|a| a.name.clone()));
    let mut sched = Scheduler::random(seed);
    let stop = drive(&mut m, &mut sched, &mut det, &DriveCfg::default());
    assert!(
        matches!(stop, portend_vm::DriveStop::Completed),
        "generated program must complete: {stop:?}"
    );
    cluster_races(det.races())
}

/// Mutex-protected cells never race; unprotected cells race on the
/// allocations we expect (a racy access pair may or may not manifest
/// under a given schedule, but reported races are never on protected
/// cells).
#[test]
fn detector_soundness() {
    let mut r = SmallRng::seed_from_u64(0x5B1);
    for _case in 0..48 {
        let protected = gen_mask(&mut r);
        let seed = r.next_u64() % 64;
        let program = build_program(&protected);
        let clusters = detect(&program, seed);
        for c in &clusters {
            let name = &c.representative.alloc_name;
            let idx: usize = name.trim_start_matches("cell").parse().unwrap();
            assert!(
                !protected[idx],
                "protected cell {name} reported as racing (mask {protected:?}, seed {seed})"
            );
        }
    }
}

/// Under round-robin (which tightly interleaves the two workers),
/// every unprotected cell is detected as racy.
#[test]
fn detector_completeness_under_interleaving() {
    let mut r = SmallRng::seed_from_u64(0xC0);
    for _case in 0..48 {
        let protected = gen_mask(&mut r);
        let program = build_program(&protected);
        let mut m = Machine::new(
            Arc::clone(&program),
            InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
            VmConfig::default(),
        );
        let mut det = HbDetector::new();
        det.set_alloc_names(program.allocs.iter().map(|a| a.name.clone()));
        let mut sched = Scheduler::RoundRobin;
        let _ = drive(&mut m, &mut sched, &mut det, &DriveCfg::default());
        let clusters = cluster_races(det.races());
        let racy_allocs: std::collections::BTreeSet<String> = clusters
            .iter()
            .map(|c| c.representative.alloc_name.clone())
            .collect();
        for (i, &p) in protected.iter().enumerate() {
            if !p {
                assert!(
                    racy_allocs.contains(&format!("cell{i}")),
                    "unprotected cell{i} not reported; mask {protected:?}, reported: {racy_allocs:?}"
                );
            }
        }
    }
}
