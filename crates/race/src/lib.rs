//! # portend-race — dynamic data race detectors
//!
//! Detectors for the Portend reproduction (Kasikci, Zamfir, Candea —
//! ASPLOS 2012):
//!
//! * [`HbDetector`] — the happens-before detector Portend uses natively
//!   (paper §3.1), built on [`VectorClock`]s with FastTrack-style epochs.
//!   Sound for the observed execution: no false positives unless
//!   configured to ignore synchronization (the §5.2 robustness experiment).
//! * [`LocksetDetector`] — an Eraser-style detector that *does* produce
//!   false positives; its reports model the output of static/lockset
//!   tools that Portend is designed to triage.
//! * [`RaceReport`] / [`cluster_races`] — dynamic occurrences and the
//!   paper's §4 clustering into distinct races.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod hb;
mod lockset;
mod report;
mod vector_clock;

pub use hb::{DetectorConfig, HbDetector};
pub use lockset::LocksetDetector;
pub use report::{cluster_races, RaceAccess, RaceCluster, RaceKey, RaceReport};
pub use vector_clock::VectorClock;
