//! The happens-before dynamic race detector (paper §3.1: "Portend detects
//! races using a dynamic happens-before algorithm").
//!
//! Vector clocks advance on synchronization events; each memory cell keeps
//! the epoch of its last write and the epochs of reads since that write
//! (FastTrack-style). An access races with a recorded access when neither
//! happens-before the other and at least one is a write.

use std::collections::BTreeMap;

use portend_vm::{
    AccessEvent, AllocId, Monitor, SyncEvent, SyncEventKind, ThreadEvent, ThreadEventKind, ThreadId,
};

use crate::report::{RaceAccess, RaceReport};
use crate::vector_clock::VectorClock;

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// When `true`, mutex acquire/release edges are ignored. This
    /// simulates an imperfect detector that reports false positives
    /// (the §5.2 experiment: Portend must classify those as harmless).
    pub ignore_mutexes: bool,
    /// When `true`, condition-variable signal edges are ignored.
    pub ignore_condvars: bool,
    /// Upper bound on recorded dynamic race occurrences (guards memory on
    /// pathological runs).
    pub max_reports: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            ignore_mutexes: false,
            ignore_condvars: false,
            max_reports: 100_000,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct CellMeta {
    /// Last write: `(tid, clock at write, access info)`.
    write: Option<(ThreadId, u64, RaceAccess)>,
    /// Reads since the last write: per-thread epoch and access info.
    reads: Vec<(ThreadId, u64, RaceAccess)>,
}

/// The happens-before race detector; plug into the VM as a [`Monitor`].
///
/// ```
/// use portend_race::HbDetector;
/// use portend_vm::{drive, DriveCfg, InputMode, InputSource, InputSpec, Machine,
///                  Operand, ProgramBuilder, Scheduler, VmConfig};
/// use std::sync::Arc;
///
/// let mut pb = ProgramBuilder::new("demo", "demo.c");
/// let g = pb.global("flag", 0);
/// let worker = pb.func("worker", |f| {
///     let _ = f.param();
///     f.store(g, Operand::Imm(0), Operand::Imm(1));
///     f.ret(None);
/// });
/// let main = pb.func("main", |f| {
///     let t = f.spawn(worker, Operand::Imm(0));
///     let _v = f.load(g, Operand::Imm(0)); // races with the store
///     f.join(t);
///     f.ret(None);
/// });
/// let program = Arc::new(pb.build(main).unwrap());
/// let mut m = Machine::new(program,
///     InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
///     VmConfig::default());
/// let mut det = HbDetector::new();
/// let mut sched = Scheduler::RoundRobin;
/// drive(&mut m, &mut sched, &mut det, &DriveCfg::default());
/// assert_eq!(det.races().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct HbDetector {
    cfg: DetectorConfig,
    clocks: Vec<VectorClock>,
    mutex_clocks: BTreeMap<u32, VectorClock>,
    cond_clocks: BTreeMap<u32, VectorClock>,
    cells: BTreeMap<(AllocId, usize), CellMeta>,
    alloc_names: Vec<String>,
    races: Vec<RaceReport>,
}

impl HbDetector {
    /// A detector with the default configuration.
    pub fn new() -> Self {
        Self::with_config(DetectorConfig::default())
    }

    /// A detector with an explicit configuration.
    pub fn with_config(cfg: DetectorConfig) -> Self {
        HbDetector {
            cfg,
            clocks: vec![init_clock(ThreadId(0))],
            mutex_clocks: BTreeMap::new(),
            cond_clocks: BTreeMap::new(),
            cells: BTreeMap::new(),
            alloc_names: Vec::new(),
            races: Vec::new(),
        }
    }

    /// Provides allocation names so reports are readable. Call once with
    /// the program's allocation table (in order).
    pub fn set_alloc_names(&mut self, names: impl IntoIterator<Item = String>) {
        self.alloc_names = names.into_iter().collect();
    }

    /// All dynamic race occurrences detected so far, in detection order.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Drains the detected races.
    pub fn take_races(&mut self) -> Vec<RaceReport> {
        std::mem::take(&mut self.races)
    }

    fn clock_mut(&mut self, tid: ThreadId) -> &mut VectorClock {
        let i = tid.0 as usize;
        while self.clocks.len() <= i {
            let id = ThreadId(self.clocks.len() as u32);
            self.clocks.push(init_clock(id));
        }
        &mut self.clocks[i]
    }

    fn alloc_name(&self, alloc: AllocId) -> String {
        self.alloc_names
            .get(alloc.0 as usize)
            .cloned()
            .unwrap_or_else(|| alloc.to_string())
    }

    fn record_race(&mut self, alloc: AllocId, offset: usize, prev: RaceAccess, cur: RaceAccess) {
        if self.races.len() >= self.cfg.max_reports {
            return;
        }
        self.races.push(RaceReport {
            alloc,
            alloc_name: self.alloc_name(alloc),
            offset,
            first: prev,
            second: cur,
        });
    }
}

impl Default for HbDetector {
    fn default() -> Self {
        Self::new()
    }
}

fn init_clock(tid: ThreadId) -> VectorClock {
    let mut c = VectorClock::new();
    c.tick(tid);
    c
}

impl Monitor for HbDetector {
    fn on_access(&mut self, ev: &AccessEvent) {
        let tid = ev.tid;
        let clock = self.clock_mut(tid).clone();
        let access = RaceAccess::from_event(ev);
        let key = (ev.alloc, ev.offset);
        let meta = self.cells.entry(key).or_default();

        let mut racing: Vec<RaceAccess> = Vec::new();
        if ev.is_write {
            // Write races with any unordered previous write or read.
            if let Some((wt, wc, wa)) = &meta.write {
                if *wt != tid && !clock.saw_epoch(*wt, *wc) {
                    racing.push(*wa);
                }
            }
            for (rt, rc, ra) in &meta.reads {
                if *rt != tid && !clock.saw_epoch(*rt, *rc) {
                    racing.push(*ra);
                }
            }
            meta.write = Some((tid, clock.get(tid), access));
            meta.reads.clear();
        } else {
            // Read races with an unordered previous write.
            if let Some((wt, wc, wa)) = &meta.write {
                if *wt != tid && !clock.saw_epoch(*wt, *wc) {
                    racing.push(*wa);
                }
            }
            // Replace this thread's stale read epoch in place: one scan
            // that stops at the matching slot, no element shifting, and
            // `reads` stays bounded by the thread count even on
            // read-heavy loops (a remove-then-append scheme walks and
            // compacts the whole vector on every repeated read).
            let epoch = clock.get(tid);
            match meta.reads.iter_mut().find(|(rt, _, _)| *rt == tid) {
                Some(slot) => {
                    slot.1 = epoch;
                    slot.2 = access;
                }
                None => meta.reads.push((tid, epoch, access)),
            }
        }
        for prev in racing {
            self.record_race(ev.alloc, ev.offset, prev, access);
        }
        // Each access is its own logical event.
        self.clock_mut(tid).tick(tid);
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        let tid = ev.tid;
        match &ev.kind {
            SyncEventKind::MutexAcquired(m) => {
                if self.cfg.ignore_mutexes {
                    return;
                }
                let lc = self.mutex_clocks.entry(m.0).or_default().clone();
                self.clock_mut(tid).join(&lc);
            }
            SyncEventKind::MutexReleased(m) => {
                if self.cfg.ignore_mutexes {
                    return;
                }
                let tc = self.clock_mut(tid).clone();
                self.mutex_clocks.entry(m.0).or_default().join(&tc);
                self.clock_mut(tid).tick(tid);
            }
            SyncEventKind::CondWaitStart { .. } => {
                // The mutex release edge was already emitted separately.
            }
            SyncEventKind::CondSignalled { cond, woken } => {
                if self.cfg.ignore_condvars {
                    return;
                }
                let tc = self.clock_mut(tid).clone();
                let cc = self.cond_clocks.entry(cond.0).or_default();
                cc.join(&tc);
                let cc = cc.clone();
                for w in woken {
                    self.clock_mut(*w).join(&cc);
                }
                self.clock_mut(tid).tick(tid);
            }
            SyncEventKind::BarrierReleased { participants, .. } => {
                // All participants synchronize with each other.
                let mut merged = VectorClock::new();
                for p in participants {
                    merged.join(&self.clock_mut(*p).clone());
                }
                for p in participants {
                    let c = self.clock_mut(*p);
                    c.join(&merged);
                    c.tick(*p);
                }
            }
        }
    }

    fn on_thread(&mut self, ev: &ThreadEvent) {
        match ev.kind {
            ThreadEventKind::Spawned { child } => {
                let pc = self.clock_mut(ev.tid).clone();
                let cc = self.clock_mut(child);
                cc.join(&pc);
                self.clock_mut(ev.tid).tick(ev.tid);
            }
            ThreadEventKind::Exited => {
                self.clock_mut(ev.tid).tick(ev.tid);
            }
            ThreadEventKind::Joined { target } => {
                let tc = self.clock_mut(target).clone();
                self.clock_mut(ev.tid).join(&tc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::cluster_races;
    use portend_vm::{
        drive, DriveCfg, InputMode, InputSource, InputSpec, Machine, Operand, ProgramBuilder,
        Scheduler, VmConfig,
    };
    use std::sync::Arc;

    fn run(p: portend_vm::Program, sched: &mut Scheduler, cfg: DetectorConfig) -> HbDetector {
        let mut det = HbDetector::with_config(cfg);
        det.set_alloc_names(p.allocs.iter().map(|a| a.name.clone()));
        let mut m = Machine::new(
            Arc::new(p),
            InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
            VmConfig::default(),
        );
        drive(&mut m, sched, &mut det, &DriveCfg::default());
        det
    }

    fn racy_program() -> portend_vm::Program {
        let mut pb = ProgramBuilder::new("racy", "racy.c");
        let g = pb.global("g", 0);
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.store(g, Operand::Imm(0), Operand::Imm(1));
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            let v = f.load(g, Operand::Imm(0));
            f.output(1, v);
            f.join(t);
            f.ret(None);
        });
        pb.build(main).unwrap()
    }

    fn locked_program() -> portend_vm::Program {
        let mut pb = ProgramBuilder::new("locked", "locked.c");
        let g = pb.global("g", 0);
        let mu = pb.mutex("m");
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.lock(mu);
            f.store(g, Operand::Imm(0), Operand::Imm(1));
            f.unlock(mu);
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            f.lock(mu);
            let v = f.load(g, Operand::Imm(0));
            f.unlock(mu);
            f.output(1, v);
            f.join(t);
            f.ret(None);
        });
        pb.build(main).unwrap()
    }

    #[test]
    fn detects_write_read_race() {
        let det = run(
            racy_program(),
            &mut Scheduler::RoundRobin,
            DetectorConfig::default(),
        );
        let clusters = cluster_races(det.races());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].representative.alloc_name, "g");
    }

    #[test]
    fn mutex_protection_suppresses_race() {
        for seed in 0..8 {
            let det = run(
                locked_program(),
                &mut Scheduler::random(seed),
                DetectorConfig::default(),
            );
            assert!(det.races().is_empty(), "seed {seed}: {:?}", det.races());
        }
    }

    #[test]
    fn mutex_blind_detector_reports_false_positive() {
        let det = run(
            locked_program(),
            &mut Scheduler::RoundRobin,
            DetectorConfig {
                ignore_mutexes: true,
                ..Default::default()
            },
        );
        assert!(!det.races().is_empty());
    }

    #[test]
    fn join_edge_suppresses_race() {
        // main reads AFTER joining the writer: no race.
        let mut pb = ProgramBuilder::new("joined", "joined.c");
        let g = pb.global("g", 0);
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.store(g, Operand::Imm(0), Operand::Imm(1));
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            f.join(t);
            let v = f.load(g, Operand::Imm(0));
            f.output(1, v);
            f.ret(None);
        });
        let p = pb.build(main).unwrap();
        for seed in 0..8 {
            let det = run(
                p.clone(),
                &mut Scheduler::random(seed),
                DetectorConfig::default(),
            );
            assert!(det.races().is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn spawn_edge_orders_parent_writes() {
        // Parent writes before spawn; child reads: no race.
        let mut pb = ProgramBuilder::new("sp", "sp.c");
        let g = pb.global("g", 0);
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            let v = f.load(g, Operand::Imm(0));
            f.output(1, v);
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            f.store(g, Operand::Imm(0), Operand::Imm(9));
            let t = f.spawn(worker, Operand::Imm(0));
            f.join(t);
            f.ret(None);
        });
        let p = pb.build(main).unwrap();
        for seed in 0..8 {
            let det = run(
                p.clone(),
                &mut Scheduler::random(seed),
                DetectorConfig::default(),
            );
            assert!(det.races().is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn repeated_reads_do_not_grow_cell_metadata() {
        // A read-heavy loop: each thread re-reads the same cell many
        // times. The per-cell read list must stay bounded by the thread
        // count (one epoch slot per thread, updated in place), or the
        // detector's write-path scan goes quadratic on such loops.
        use portend_vm::{AccessEvent, AllocId, BlockId, FuncId, Pc};
        let mut det = HbDetector::new();
        let pc = Pc {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        };
        for step in 0..1_000u64 {
            det.on_access(&AccessEvent {
                tid: ThreadId((step % 3) as u32),
                pc,
                line: 1,
                alloc: AllocId(0),
                offset: 0,
                is_write: false,
                step,
            });
        }
        let meta = det.cells.get(&(AllocId(0), 0)).expect("cell tracked");
        assert_eq!(meta.reads.len(), 3, "one read-epoch slot per thread");
        // Each slot carries the thread's latest epoch, not its first.
        for &(tid, epoch, _) in &meta.reads {
            assert_eq!(epoch, det.clocks[tid.0 as usize].get(tid) - 1);
        }
    }

    #[test]
    fn write_write_race_detected() {
        let mut pb = ProgramBuilder::new("ww", "ww.c");
        let g = pb.global("g", 0);
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.store(g, Operand::Imm(0), Operand::Imm(2));
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            f.store(g, Operand::Imm(0), Operand::Imm(3));
            f.join(t);
            f.ret(None);
        });
        let det = run(
            pb.build(main).unwrap(),
            &mut Scheduler::RoundRobin,
            DetectorConfig::default(),
        );
        let clusters = cluster_races(det.races());
        assert_eq!(clusters.len(), 1);
        assert!(clusters[0].representative.first.is_write);
        assert!(clusters[0].representative.second.is_write);
    }
}
