//! An Eraser-style lockset race detector (paper §7 \[49\]).
//!
//! Lockset detection is *complete but unsound*: it reports any shared
//! location not consistently protected by some common lock, producing
//! false positives for locations protected by other happens-before
//! relationships (fork/join, barriers, condition variables, ad-hoc
//! synchronization). In the paper's workflow such reports are exactly what
//! Portend triages: "If one wanted to eliminate all harmful races from
//! their code, they could use a static race detector [complete, prone to
//! false positives] and then use Portend to classify these reports" (§5.1).

use std::collections::{BTreeMap, BTreeSet};

use portend_vm::{AccessEvent, AllocId, Monitor, SyncEvent, SyncEventKind, SyncId, ThreadId};

use crate::report::{RaceAccess, RaceReport};

/// The Eraser state of one memory cell.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CellState {
    /// Never accessed.
    Virgin,
    /// Accessed by exactly one thread so far.
    Exclusive(ThreadId),
    /// Read-shared by several threads (no write since sharing).
    Shared,
    /// Written while shared: lockset violations are reported.
    SharedModified,
}

#[derive(Debug, Clone)]
struct CellInfo {
    state: CellState,
    /// Candidate lockset: `None` means "all locks" (not yet constrained).
    lockset: Option<BTreeSet<SyncId>>,
    last: Option<RaceAccess>,
}

impl Default for CellInfo {
    fn default() -> Self {
        CellInfo {
            state: CellState::Virgin,
            lockset: None,
            last: None,
        }
    }
}

/// The lockset detector; plug into the VM as a [`Monitor`].
#[derive(Debug, Clone, Default)]
pub struct LocksetDetector {
    held: BTreeMap<ThreadId, BTreeSet<SyncId>>,
    cells: BTreeMap<(AllocId, usize), CellInfo>,
    alloc_names: Vec<String>,
    reports: Vec<RaceReport>,
}

impl LocksetDetector {
    /// A fresh detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Provides allocation names for readable reports.
    pub fn set_alloc_names(&mut self, names: impl IntoIterator<Item = String>) {
        self.alloc_names = names.into_iter().collect();
    }

    /// All potential races reported so far. Unlike the happens-before
    /// detector these may be false positives.
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    fn alloc_name(&self, alloc: AllocId) -> String {
        self.alloc_names
            .get(alloc.0 as usize)
            .cloned()
            .unwrap_or_else(|| alloc.to_string())
    }
}

impl Monitor for LocksetDetector {
    fn on_access(&mut self, ev: &AccessEvent) {
        let held = self.held.get(&ev.tid).cloned().unwrap_or_default();
        let access = RaceAccess::from_event(ev);
        let name = self.alloc_name(ev.alloc);
        let info = self.cells.entry((ev.alloc, ev.offset)).or_default();

        // State transitions per Eraser.
        let new_state = match (&info.state, ev.is_write) {
            (CellState::Virgin, _) => CellState::Exclusive(ev.tid),
            (CellState::Exclusive(t), _) if *t == ev.tid => CellState::Exclusive(ev.tid),
            (CellState::Exclusive(_), false) => CellState::Shared,
            (CellState::Exclusive(_), true) => CellState::SharedModified,
            (CellState::Shared, false) => CellState::Shared,
            (CellState::Shared, true) => CellState::SharedModified,
            (CellState::SharedModified, _) => CellState::SharedModified,
        };
        let entering_tracking = !matches!(info.state, CellState::Virgin)
            && !matches!((&info.state, &new_state), (CellState::Exclusive(a), CellState::Exclusive(b)) if a == b);
        if entering_tracking {
            // Refine the candidate lockset.
            let ls = match &info.lockset {
                None => held.clone(),
                Some(prev) => prev.intersection(&held).copied().collect(),
            };
            let empty = ls.is_empty();
            info.lockset = Some(ls);
            if empty && matches!(new_state, CellState::SharedModified) {
                if let Some(prev) = info.last {
                    if prev.tid != ev.tid {
                        self.reports.push(RaceReport {
                            alloc: ev.alloc,
                            alloc_name: name,
                            offset: ev.offset,
                            first: prev,
                            second: access,
                        });
                    }
                }
            }
        }
        info.state = new_state;
        info.last = Some(access);
    }

    fn on_sync(&mut self, ev: &SyncEvent) {
        match &ev.kind {
            SyncEventKind::MutexAcquired(m) => {
                self.held.entry(ev.tid).or_default().insert(*m);
            }
            SyncEventKind::MutexReleased(m) => {
                self.held.entry(ev.tid).or_default().remove(m);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::cluster_races;
    use portend_vm::{
        drive, DriveCfg, InputMode, InputSource, InputSpec, Machine, Operand, ProgramBuilder,
        Scheduler, VmConfig,
    };
    use std::sync::Arc;

    fn run(p: portend_vm::Program) -> LocksetDetector {
        let mut det = LocksetDetector::new();
        det.set_alloc_names(p.allocs.iter().map(|a| a.name.clone()));
        let mut m = Machine::new(
            Arc::new(p),
            InputSource::new(InputSpec::concrete(vec![]), InputMode::Concrete),
            VmConfig::default(),
        );
        let mut s = Scheduler::RoundRobin;
        drive(&mut m, &mut s, &mut det, &DriveCfg::default());
        det
    }

    #[test]
    fn unprotected_write_write_reported() {
        let mut pb = ProgramBuilder::new("ww", "ww.c");
        let g = pb.global("g", 0);
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.store(g, Operand::Imm(0), Operand::Imm(2));
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            f.store(g, Operand::Imm(0), Operand::Imm(3));
            f.join(t);
            f.ret(None);
        });
        let det = run(pb.build(main).unwrap());
        assert_eq!(cluster_races(det.reports()).len(), 1);
    }

    #[test]
    fn consistent_locking_not_reported() {
        let mut pb = ProgramBuilder::new("ok", "ok.c");
        let g = pb.global("g", 0);
        let mu = pb.mutex("m");
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.lock(mu);
            f.racy_inc(g, Operand::Imm(0));
            f.unlock(mu);
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            f.lock(mu);
            f.racy_inc(g, Operand::Imm(0));
            f.unlock(mu);
            f.join(t);
            f.ret(None);
        });
        let det = run(pb.build(main).unwrap());
        assert!(det.reports().is_empty(), "{:?}", det.reports());
    }

    #[test]
    fn fork_join_discipline_is_a_lockset_false_positive() {
        // Write in child, read in parent after join: HB-safe, but lockset
        // flags it — exactly the kind of report Portend must triage.
        let mut pb = ProgramBuilder::new("fj", "fj.c");
        let g = pb.global("g", 0);
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.store(g, Operand::Imm(0), Operand::Imm(1));
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            f.join(t);
            f.store(g, Operand::Imm(0), Operand::Imm(2));
            f.ret(None);
        });
        let det = run(pb.build(main).unwrap());
        assert_eq!(det.reports().len(), 1);
    }
}
