//! Vector clocks for happens-before tracking (Lamport \[31\] in the paper).

use std::fmt;

use portend_vm::ThreadId;

/// A vector clock: one logical clock per thread.
///
/// Clocks grow on demand as threads are spawned; missing entries are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The clock component for `tid`.
    pub fn get(&self, tid: ThreadId) -> u64 {
        self.slots.get(tid.0 as usize).copied().unwrap_or(0)
    }

    /// Increments `tid`'s component.
    pub fn tick(&mut self, tid: ThreadId) {
        let i = tid.0 as usize;
        if self.slots.len() <= i {
            self.slots.resize(i + 1, 0);
        }
        self.slots[i] += 1;
    }

    /// Component-wise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (i, v) in other.slots.iter().enumerate() {
            if self.slots[i] < *v {
                self.slots[i] = *v;
            }
        }
    }

    /// Whether `self ≤ other` component-wise (i.e. everything `self` has
    /// seen, `other` has seen).
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(i, v)| *v <= other.slots.get(i).copied().unwrap_or(0))
    }

    /// Whether the epoch `(tid, clock)` happened before the point in time
    /// described by this clock — the FastTrack-style epoch test.
    pub fn saw_epoch(&self, tid: ThreadId, clock: u64) -> bool {
        clock <= self.get(tid)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.slots.iter().map(|v| v.to_string()).collect();
        write!(f, "<{}>", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn tick_and_get() {
        let mut c = VectorClock::new();
        assert_eq!(c.get(t(3)), 0);
        c.tick(t(3));
        c.tick(t(3));
        assert_eq!(c.get(t(3)), 2);
        assert_eq!(c.get(t(0)), 0);
    }

    #[test]
    fn join_is_component_max() {
        let mut a = VectorClock::new();
        a.tick(t(0));
        let mut b = VectorClock::new();
        b.tick(t(1));
        b.tick(t(1));
        a.join(&b);
        assert_eq!(a.get(t(0)), 1);
        assert_eq!(a.get(t(1)), 2);
    }

    #[test]
    fn leq_ordering() {
        let mut a = VectorClock::new();
        a.tick(t(0));
        let mut b = a.clone();
        b.tick(t(1));
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        // Concurrent clocks: neither ≤.
        let mut c = VectorClock::new();
        c.tick(t(2));
        assert!(!b.leq(&c));
        assert!(!c.leq(&b));
    }

    #[test]
    fn epoch_test() {
        let mut a = VectorClock::new();
        a.tick(t(1));
        a.tick(t(1));
        assert!(a.saw_epoch(t(1), 2));
        assert!(!a.saw_epoch(t(1), 3));
        assert!(a.saw_epoch(t(0), 0));
    }
}
