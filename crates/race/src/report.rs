//! Race reports and clustering.
//!
//! The paper clusters dynamic race occurrences "by whether the racing
//! accesses are made to the same shared memory location by the same
//! threads, and the stack traces of the accesses are the same" (§4), and
//! presents one representative per cluster. We key clusters on
//! `(allocation, offset, unordered pc pair)`.

use std::collections::BTreeMap;
use std::fmt;

use portend_vm::{AccessEvent, AllocId, Pc, ThreadId};

/// One side of a racing access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceAccess {
    /// The accessing thread.
    pub tid: ThreadId,
    /// Where the access executed.
    pub pc: Pc,
    /// Source line.
    pub line: u32,
    /// Whether the access is a write.
    pub is_write: bool,
    /// Global instruction index of the access within its execution.
    pub step: u64,
}

impl RaceAccess {
    /// Builds a race access from a monitor event.
    pub fn from_event(ev: &AccessEvent) -> Self {
        RaceAccess {
            tid: ev.tid,
            pc: ev.pc,
            line: ev.line,
            is_write: ev.is_write,
            step: ev.step,
        }
    }
}

impl fmt::Display for RaceAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {} (line {})",
            self.tid,
            if self.is_write { "WRITE" } else { "READ" },
            self.pc,
            self.line
        )
    }
}

/// One dynamic data race occurrence: two unordered conflicting accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The accessed allocation.
    pub alloc: AllocId,
    /// The allocation's name.
    pub alloc_name: String,
    /// Offset of the accessed cell.
    pub offset: usize,
    /// The access that executed first in this run.
    pub first: RaceAccess,
    /// The access that executed second in this run.
    pub second: RaceAccess,
}

impl RaceReport {
    /// The cluster key: same location plus the same (unordered) pc pair.
    pub fn cluster_key(&self) -> RaceKey {
        let (a, b) = if self.first.pc <= self.second.pc {
            (self.first.pc, self.second.pc)
        } else {
            (self.second.pc, self.first.pc)
        };
        RaceKey {
            alloc: self.alloc,
            offset: self.offset,
            pc_lo: a,
            pc_hi: b,
        }
    }

    /// The unordered `(lower, higher)` program-counter pair of the two
    /// accesses — the key a static candidate pair is matched on
    /// (`portend_sa::StaticAnalysis::covers` ignores the offset: static
    /// analysis does not model indices).
    pub fn pc_pair(&self) -> (Pc, Pc) {
        if self.first.pc <= self.second.pc {
            (self.first.pc, self.second.pc)
        } else {
            (self.second.pc, self.first.pc)
        }
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on {}[{}]: {} vs {}",
            self.alloc_name, self.offset, self.first, self.second
        )
    }
}

/// The clustering key of a race (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RaceKey {
    /// The accessed allocation.
    pub alloc: AllocId,
    /// Offset of the accessed cell.
    pub offset: usize,
    /// The smaller pc of the racing pair.
    pub pc_lo: Pc,
    /// The larger pc of the racing pair.
    pub pc_hi: Pc,
}

/// A cluster of identical races: one representative plus an instance count
/// (Table 3's "distinct races" vs "race instances").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceCluster {
    /// A representative occurrence (the first observed).
    pub representative: RaceReport,
    /// How many dynamic occurrences were observed.
    pub instances: u64,
}

/// Clusters dynamic race occurrences, preserving first-seen order.
///
/// The representative of a cluster is its first occurrence whose *first*
/// access is a write, falling back to the very first occurrence. A
/// write-first representative makes the alternate ordering "the other
/// thread observes the cell before the write", which is the ordering
/// whose enforcement exposes ad-hoc synchronization (the reader spins
/// forever while the writer is held back) — matching how the paper's
/// single-ordering analysis behaves (§3.2).
pub fn cluster_races(races: &[RaceReport]) -> Vec<RaceCluster> {
    let mut order: Vec<RaceKey> = Vec::new();
    let mut map: BTreeMap<RaceKey, RaceCluster> = BTreeMap::new();
    for r in races {
        let key = r.cluster_key();
        match map.get_mut(&key) {
            Some(c) => {
                c.instances += 1;
                if !c.representative.first.is_write && r.first.is_write {
                    c.representative = r.clone();
                }
            }
            None => {
                order.push(key);
                map.insert(
                    key,
                    RaceCluster {
                        representative: r.clone(),
                        instances: 1,
                    },
                );
            }
        }
    }
    order
        .into_iter()
        .map(|k| map.remove(&k).expect("inserted"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use portend_vm::{BlockId, FuncId};

    fn pc(i: u32) -> Pc {
        Pc {
            func: FuncId(0),
            block: BlockId(0),
            idx: i,
        }
    }

    fn acc(tid: u32, p: Pc, w: bool) -> RaceAccess {
        RaceAccess {
            tid: ThreadId(tid),
            pc: p,
            line: 0,
            is_write: w,
            step: 0,
        }
    }

    fn report(p1: Pc, p2: Pc) -> RaceReport {
        RaceReport {
            alloc: AllocId(0),
            alloc_name: "g".into(),
            offset: 0,
            first: acc(0, p1, true),
            second: acc(1, p2, false),
        }
    }

    #[test]
    fn cluster_key_is_order_insensitive() {
        let a = report(pc(1), pc(2));
        let b = report(pc(2), pc(1));
        assert_eq!(a.cluster_key(), b.cluster_key());
    }

    #[test]
    fn clustering_counts_instances() {
        let races = vec![
            report(pc(1), pc(2)),
            report(pc(2), pc(1)),
            report(pc(1), pc(3)),
        ];
        let clusters = cluster_races(&races);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].instances, 2);
        assert_eq!(clusters[1].instances, 1);
    }

    #[test]
    fn display_mentions_location() {
        let r = report(pc(1), pc(2));
        let s = r.to_string();
        assert!(s.contains("g[0]"));
        assert!(s.contains("WRITE"));
    }
}
