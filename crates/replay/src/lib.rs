//! # portend-replay — execution traces, recording, deterministic replay
//!
//! The paper's trace format (§3.1): "a schedule trace and a log of system
//! call inputs. The schedule trace contains the thread id and the program
//! counter at each preemption point … \[and\] the absolute count of
//! instructions executed up to each preemption point". Here the schedule
//! trace is the ordered list of scheduler decisions (one per preemption
//! point — pcs and instruction counts are recoverable deterministically),
//! and the input log is the concrete values consumed by `Input`.
//!
//! [`record`] runs a program once under a chosen scheduler with the
//! happens-before detector attached and returns the replayable
//! [`ExecutionTrace`] together with the detected races — this is what a
//! ThreadSanitizer-plugin trace (§3.1) provides to the original Portend.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod recorder;
mod trace;

pub use recorder::{record, RecordConfig, RecordedRun};
pub use trace::ExecutionTrace;
