//! The replayable execution trace.

use std::sync::Arc;

use portend_vm::{
    InputMode, InputSource, InputSpec, Machine, Program, Scheduler, ThreadId, VmConfig,
};

/// A replayable trace: scheduler decisions plus the program input log.
///
/// Replaying the same trace against the same program reproduces the exact
/// interleaving of accesses (see `portend-vm`'s executor contract), which
/// is the foundation of Portend's checkpoint-based analyses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionTrace {
    /// Scheduler decisions, one per preemption point, in order.
    pub schedule: Vec<ThreadId>,
    /// Concrete input log.
    pub inputs: Vec<i64>,
}

impl ExecutionTrace {
    /// Creates a trace.
    pub fn new(schedule: Vec<ThreadId>, inputs: Vec<i64>) -> Self {
        ExecutionTrace { schedule, inputs }
    }

    /// A scheduler that follows this trace and then falls back to fair
    /// round-robin scheduling (fairness matters: after the alternate
    /// ordering diverges from the trace, a spinning thread must not
    /// starve the thread it waits on).
    pub fn scheduler(&self) -> Scheduler {
        Scheduler::follow_with_fallback(self.schedule.clone(), Scheduler::RoundRobin)
    }

    /// A scheduler that follows this trace and then falls back to the
    /// given policy (used for multi-schedule analysis where the post-race
    /// part of the alternate is randomized, paper §3.4).
    pub fn scheduler_with_fallback(&self, fallback: Scheduler) -> Scheduler {
        Scheduler::follow_with_fallback(self.schedule.clone(), fallback)
    }

    /// Boots a machine that replays this trace's inputs concretely.
    pub fn machine(&self, program: &Arc<Program>, cfg: VmConfig) -> Machine {
        Machine::new(
            Arc::clone(program),
            InputSource::new(
                InputSpec::concrete(self.inputs.clone()),
                InputMode::Concrete,
            ),
            cfg,
        )
    }

    /// Boots a machine with the leading inputs made symbolic per `spec`
    /// (multi-path analysis, paper §3.3). The spec's concrete values are
    /// replaced by this trace's input log so non-symbolic positions replay
    /// exactly.
    pub fn machine_symbolic(
        &self,
        program: &Arc<Program>,
        spec: &InputSpec,
        cfg: VmConfig,
    ) -> Machine {
        let merged = InputSpec {
            values: self.inputs.clone(),
            symbolic: spec.symbolic.clone(),
        };
        Machine::new(
            Arc::clone(program),
            InputSource::new(merged, InputMode::Symbolic),
            cfg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_roundtrip() {
        let tr = ExecutionTrace::new(vec![ThreadId(1), ThreadId(0)], vec![5]);
        let mut s = tr.scheduler();
        assert!(!s.diverged());
        let picked = s.pick(
            &[ThreadId(0), ThreadId(1)],
            &[ThreadId(0), ThreadId(1)],
            ThreadId(0),
            portend_vm::PickReason::Preemption,
        );
        assert_eq!(picked, ThreadId(1));
    }
}
