//! Recording runs: execute once, capture the trace and the race reports.

use std::sync::Arc;

use portend_race::{cluster_races, DetectorConfig, HbDetector, RaceCluster, RaceReport};
use portend_vm::{
    drive, DriveCfg, DriveStop, InputMode, InputSource, InputSpec, Machine, OutputLog, Program,
    Scheduler, VmConfig,
};

use crate::trace::ExecutionTrace;

/// Configuration for one recording run.
#[derive(Debug, Clone)]
pub struct RecordConfig {
    /// The scheduler driving the recorded execution.
    pub scheduler: Scheduler,
    /// VM configuration.
    pub vm: VmConfig,
    /// Race detector configuration.
    pub detector: DetectorConfig,
    /// Step budget.
    pub max_steps: u64,
}

impl Default for RecordConfig {
    fn default() -> Self {
        RecordConfig {
            scheduler: Scheduler::RoundRobin,
            vm: VmConfig::default(),
            detector: DetectorConfig::default(),
            max_steps: 2_000_000,
        }
    }
}

/// The result of a recording run.
#[derive(Debug, Clone)]
pub struct RecordedRun {
    /// The replayable trace.
    pub trace: ExecutionTrace,
    /// Every dynamic race occurrence, in detection order.
    pub races: Vec<RaceReport>,
    /// Distinct races (paper §4 clustering).
    pub clusters: Vec<RaceCluster>,
    /// How the run ended.
    pub stop: DriveStop,
    /// The run's output log.
    pub output: OutputLog,
    /// The final machine state (useful for assertions in tests).
    pub machine: Machine,
}

/// Runs `program` once on `inputs` with the happens-before detector
/// attached, recording the schedule. This provides the "race report +
/// trace" that seeds Portend's classification (paper §3.1: developers run
/// their existing test suites under Portend).
pub fn record(program: &Arc<Program>, inputs: Vec<i64>, cfg: RecordConfig) -> RecordedRun {
    let mut machine = Machine::new(
        Arc::clone(program),
        InputSource::new(InputSpec::concrete(inputs.clone()), InputMode::Concrete),
        cfg.vm,
    );
    let mut det = HbDetector::with_config(cfg.detector);
    det.set_alloc_names(program.allocs.iter().map(|a| a.name.clone()));
    let mut sched = cfg.scheduler;
    let drive_cfg = DriveCfg {
        max_steps: cfg.max_steps,
        record_schedule: true,
        ..Default::default()
    };
    let stop = drive(&mut machine, &mut sched, &mut det, &drive_cfg);
    let races = det.take_races();
    let clusters = cluster_races(&races);
    RecordedRun {
        trace: ExecutionTrace::new(machine.sched_log.to_vec(), inputs),
        races,
        clusters,
        stop,
        output: machine.output.clone(),
        machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portend_vm::{drive, DriveCfg, NullMonitor, Operand, ProgramBuilder};

    fn racy_program() -> Arc<Program> {
        let mut pb = ProgramBuilder::new("racy", "racy.c");
        let g = pb.global("g", 0);
        let worker = pb.func("worker", |f| {
            let _ = f.param();
            f.racy_inc(g, Operand::Imm(0));
            f.ret(None);
        });
        let main = pb.func("main", |f| {
            let t = f.spawn(worker, Operand::Imm(0));
            f.racy_inc(g, Operand::Imm(0));
            f.join(t);
            let v = f.load(g, Operand::Imm(0));
            f.output(1, v);
            f.ret(None);
        });
        Arc::new(pb.build(main).unwrap())
    }

    #[test]
    fn record_finds_races_and_replay_reproduces_output() {
        let p = racy_program();
        let run = record(
            &p,
            vec![],
            RecordConfig {
                scheduler: Scheduler::random(3),
                ..Default::default()
            },
        );
        assert_eq!(run.stop, DriveStop::Completed);
        assert!(!run.clusters.is_empty());

        // Deterministic replay gives identical output.
        let mut m = run.trace.machine(&p, VmConfig::default());
        let mut s = run.trace.scheduler();
        let mut mon = NullMonitor;
        let stop = drive(&mut m, &mut s, &mut mon, &DriveCfg::default());
        assert_eq!(stop, DriveStop::Completed);
        assert_eq!(m.output, run.output);
        assert!(!s.diverged());
    }

    #[test]
    fn recorded_race_instances_cluster() {
        let p = racy_program();
        let run = record(&p, vec![], RecordConfig::default());
        for c in &run.clusters {
            assert!(c.instances >= 1);
            assert_eq!(c.representative.alloc_name, "g");
        }
    }
}
